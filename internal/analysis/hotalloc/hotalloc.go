// Package hotalloc enforces the zero-allocation discipline on functions
// annotated //finemoe:hotpath — the per-event code the serving loop runs
// millions of times per experiment (engine stepping, residency
// transitions, index scans, the cluster event heap). Inside an annotated
// function it flags the allocation shapes detected by
// internal/analysis/allocscan (pointer literals, unguarded make/append,
// interface boxing, capturing closures); see that package for the exact
// rules and the sanctioned cap-guard grow idiom.
//
// hotalloc is deliberately intraprocedural — one function body at a
// time; its interprocedural sibling callalloc walks the call graph from
// the same //finemoe:hotpath roots and flags allocations in everything
// they reach.
//
// Intentional allocations (cold grow paths, error exits) carry a
// //finemoe:alloc-ok <reason> directive.
package hotalloc

import (
	"go/ast"
	"strings"

	"finemoe/internal/analysis"
	"finemoe/internal/analysis/allocscan"
)

// Directive is the escape-hatch vocabulary entry hotalloc honors.
const Directive = "alloc-ok"

// Marker annotates a hot-path function (in its doc comment block).
const Marker = "//finemoe:hotpath"

var Analyzer = &analysis.Analyzer{
	Name:       "hotalloc",
	Doc:        "flags heap allocations inside //finemoe:hotpath functions",
	Run:        run,
	Directives: []string{Directive},
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !IsHotpath(fn) {
				continue
			}
			for _, site := range allocscan.Scan(pass, fn) {
				if pass.Allowed(Directive, site.Node) {
					continue
				}
				pass.Reportf(site.Node.Pos(), "hotpath %s: %s", fn.Name.Name, site.Msg)
			}
		}
	}
	return nil, nil
}

// IsHotpath reports whether the function's doc block carries the
// //finemoe:hotpath marker (shared with callalloc, which roots its call
// graph at the same functions).
func IsHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}
