package hotalloc_test

import (
	"testing"

	"finemoe/internal/analysis/analysistest"
	"finemoe/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "../testdata", hotalloc.Analyzer, "hot")
}
