// Package metrics provides the statistical summaries and text rendering the
// benchmark harness uses to reproduce the paper's tables and figures:
// mean/percentile summaries, CDFs (Fig. 11), and aligned-column tables.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	Std            float64
}

// Summarize computes a Summary. An empty sample returns zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	return summarizeOwned(s)
}

// summarizeOwned sorts s in place and summarizes it. Both Summarize and
// Column.Summarize funnel here, so the statistics are computed by the
// same float operations in the same order regardless of how the sample
// was stored.
func summarizeOwned(s []float64) Summary {
	sort.Float64s(s)
	var sum, sumSq float64
	for _, v := range s {
		sum += v
		sumSq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N: len(s), Mean: mean, Min: s[0], Max: s[len(s)-1],
		P50: Percentile(s, 0.50), P90: Percentile(s, 0.90), P99: Percentile(s, 0.99),
		Std: math.Sqrt(variance),
	}
}

// columnChunk is the number of float64s per Column chunk.
const columnChunk = 1 << 16

// Column is an append-only float64 sample stored in fixed-size chunks.
// An append-grown flat slice copies every element O(log n) times as the
// backing array doubles and briefly holds ~3× the sample during the
// largest regrowth; a chunked column writes each element exactly once and
// its peak overhead is one 64Ki chunk, which is what lets multi-million
// request cluster runs aggregate latencies without the allocator churn
// dominating the run's heap profile.
type Column struct {
	chunks [][]float64
	n      int
}

// Append adds one sample value.
func (c *Column) Append(v float64) {
	if c.n == len(c.chunks)*columnChunk {
		c.chunks = append(c.chunks, make([]float64, 0, columnChunk))
	}
	last := len(c.chunks) - 1
	c.chunks[last] = append(c.chunks[last], v)
	c.n++
}

// Len returns the number of appended values.
func (c *Column) Len() int { return c.n }

// Summarize computes the same Summary Summarize would over the flattened
// column: the sample is gathered once into an exact-size slice (the only
// full-sample allocation the column ever makes) and summarized by the
// shared sorted-sample path, so the result is byte-identical to
// Summarize(flattened).
func (c *Column) Summarize() Summary {
	if c.n == 0 {
		return Summary{}
	}
	s := make([]float64, 0, c.n)
	for _, ch := range c.chunks {
		s = append(s, ch...)
	}
	return summarizeOwned(s)
}

// Percentile returns the p-quantile (0 <= p <= 1) of a sorted sample using
// linear interpolation. It panics on an empty sample or p outside [0,1].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: percentile of empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,1]", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns the empirical distribution of the sample as (value, fraction)
// steps, suitable for plotting Fig. 11.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{Value: v, Frac: float64(i+1) / float64(len(s))}
	}
	return out
}

// CDFAt returns the fraction of the sample <= v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Table renders aligned-column text tables for benchmark output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v, floats with 3 decimals.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

func trimFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e12:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Header returns the column headers.
func (t *Table) Header() []string { return append([]string(nil), t.header...) }

// Rows returns the formatted cell rows (copies).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintln(w, line(t.header))
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV renders the table as comma-separated values (quoting is not needed
// for the numeric/identifier content the harness produces).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// GB formats a byte count in decimal gigabytes, the paper's unit.
func GB(bytes int64) string { return fmt.Sprintf("%.1f", float64(bytes)/1e9) }

// MB formats a byte count in mebibytes, matching Fig. 18's axis.
func MB(bytes int64) string { return fmt.Sprintf("%.1f", float64(bytes)/(1<<20)) }

// Seconds formats milliseconds as seconds with 3 decimals (TTFT/TPOT are
// reported in seconds throughout the paper's evaluation).
func Seconds(ms float64) string { return fmt.Sprintf("%.3f", ms/1000) }
