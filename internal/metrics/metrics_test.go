package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"finemoe/internal/rng"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{10, 20, 30, 40}
	if got := Percentile(s, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(s, 1); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(s, 0.5); got != 25 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("singleton percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":        func() { Percentile(nil, 0.5) },
		"out of range": func() { Percentile([]float64{1}, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("cdf points %d", len(pts))
	}
	if pts[0].Value != 1 || pts[2].Value != 3 {
		t.Fatalf("cdf not sorted: %+v", pts)
	}
	if pts[2].Frac != 1 {
		t.Fatalf("cdf does not reach 1: %+v", pts)
	}
	if CDFAt([]float64{1, 2, 3, 4}, 2.5) != 0.5 {
		t.Fatal("CDFAt wrong")
	}
	if CDFAt(nil, 1) != 0 {
		t.Fatal("empty CDFAt wrong")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := r.Derive(seed)
		xs := make([]float64, 1+rr.Intn(50))
		for i := range xs {
			xs[i] = rr.Norm() * 10
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].Frac < pts[i-1].Frac {
				return false
			}
		}
		return pts[len(pts)-1].Frac == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("model", "tpot_s", "hit")
	tb.Row("Mixtral", 1234.5, 0.912)
	tb.Row("Qwen", 7.0, 0.5)
	out := tb.String()
	if !strings.Contains(out, "model") || !strings.Contains(out, "Mixtral") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("render lines %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "1234.5") || !strings.Contains(out, "0.912") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "model,tpot_s,hit\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
}

func TestUnitFormatting(t *testing.T) {
	if GB(67_000_000_000) != "67.0" {
		t.Fatalf("GB = %s", GB(67_000_000_000))
	}
	if MB(200<<20) != "200.0" {
		t.Fatalf("MB = %s", MB(200<<20))
	}
	if Seconds(1500) != "1.500" {
		t.Fatalf("Seconds = %s", Seconds(1500))
	}
}
