package metrics

import (
	"strconv"
	"strings"
	"testing"
)

func TestPlotRendersSeries(t *testing.T) {
	p := NewPlot("tpot vs cache", "GB", "s")
	p.Add(Series{Name: "FineMoE", X: []float64{6, 12, 24, 48}, Y: []float64{0.5, 0.4, 0.35, 0.3}})
	p.Add(Series{Name: "DeepSpeed", X: []float64{6, 12, 24, 48}, Y: []float64{1.0, 1.0, 0.9, 0.7}})
	out := p.String()
	if !strings.Contains(out, "tpot vs cache") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "FineMoE") || !strings.Contains(out, "DeepSpeed") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 18 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
}

func TestPlotEmpty(t *testing.T) {
	out := NewPlot("empty", "", "").String()
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot rendering: %q", out)
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	// Single point and flat series must not divide by zero.
	p := NewPlot("flat", "", "")
	p.Add(Series{Name: "pt", X: []float64{1}, Y: []float64{2}})
	p.Add(Series{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}})
	out := p.String()
	if strings.Contains(out, "NaN") {
		t.Fatalf("NaN leaked into plot:\n%s", out)
	}
}

func TestPlotMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlot("", "", "").Add(Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}})
}

func TestCDFSeries(t *testing.T) {
	s := CDFSeries("lat", []float64{3, 1, 2})
	if len(s.X) != 3 || s.X[0] != 1 || s.Y[2] != 1 {
		t.Fatalf("cdf series %+v", s)
	}
}

func TestPlotMonotoneAxis(t *testing.T) {
	// The y-axis labels must be monotonically decreasing down the rows.
	p := NewPlot("", "", "")
	p.Add(Series{Name: "s", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 4, 9}})
	lines := strings.Split(strings.TrimSpace(p.String()), "\n")
	var prev float64 = 1e18
	count := 0
	for _, ln := range lines {
		if !strings.Contains(ln, "|") {
			continue
		}
		fields := strings.Fields(ln)
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		if v >= prev {
			t.Fatalf("axis not decreasing: %v then %v", prev, v)
		}
		prev = v
		count++
	}
	if count < 10 {
		t.Fatalf("too few axis rows parsed: %d", count)
	}
}
