package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line of a plot.
type Series struct {
	Name string
	// X and Y must have equal length.
	X, Y []float64
}

// Plot renders series as an ASCII chart — the terminal stand-in for the
// paper's figures. Rows are y-buckets (top = max), columns x-buckets; each
// series draws with its own glyph.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	series []Series
}

// NewPlot creates a plot with sane terminal dimensions.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 16}
}

// Add appends a series. It panics on mismatched coordinate lengths.
func (p *Plot) Add(s Series) *Plot {
	if len(s.X) != len(s.Y) {
		panic(fmt.Sprintf("metrics: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y)))
	}
	p.series = append(p.series, s)
	return p
}

var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// String renders the chart.
func (p *Plot) String() string {
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range p.series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, p.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.Width))
	}
	for si, s := range p.series {
		g := plotGlyphs[si%len(plotGlyphs)]
		// Sort points by x so line interpolation is well defined.
		idx := make([]int, len(s.X))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
		var prevC, prevR int = -1, -1
		for _, i := range idx {
			cCol := int((s.X[i] - xmin) / (xmax - xmin) * float64(p.Width-1))
			cRow := p.Height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(p.Height-1))
			plotLine(grid, prevC, prevR, cCol, cRow, g)
			grid[cRow][cCol] = g
			prevC, prevR = cCol, cRow
		}
	}

	for r, row := range grid {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(p.Height-1)
		fmt.Fprintf(&b, "%10.3g |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", p.Width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", p.Width/2, xmin, p.Width/2, xmax)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s, y: %s\n", "", p.XLabel, p.YLabel)
	}
	for si, s := range p.series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", plotGlyphs[si%len(plotGlyphs)], s.Name)
	}
	return b.String()
}

// plotLine draws a coarse interpolation between consecutive points so
// sparse series still read as lines.
func plotLine(grid [][]byte, c0, r0, c1, r1 int, g byte) {
	if c0 < 0 || (c0 == c1 && r0 == r1) {
		return
	}
	steps := maxInt(absInt(c1-c0), absInt(r1-r0))
	for s := 1; s < steps; s++ {
		c := c0 + (c1-c0)*s/steps
		r := r0 + (r1-r0)*s/steps
		if grid[r][c] == ' ' {
			grid[r][c] = g
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CDFSeries converts a latency sample into a plottable CDF series.
func CDFSeries(name string, xs []float64) Series {
	pts := CDF(xs)
	s := Series{Name: name, X: make([]float64, len(pts)), Y: make([]float64, len(pts))}
	for i, p := range pts {
		s.X[i] = p.Value
		s.Y[i] = p.Frac
	}
	return s
}
