package experiments

import (
	"fmt"
	"math"

	"finemoe/internal/cache"
	"finemoe/internal/core"
	"finemoe/internal/metrics"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/workload"
)

func init() {
	register("abl-coverage", "Analysis: store capacity vs similarity coverage (§4.4 bound)", runAblCoverage)
	register("abl-evict", "Ablation: eviction-priority components", runAblEvict)
	register("abl-prefilter", "Ablation: semantic prefilter size for trajectory search", runAblPrefilter)
}

// runAblCoverage probes the §4.4 theoretical analysis empirically: the
// paper cites sphere-covering results promising ≥75% similarity coverage at
// 2·L·J stored maps and ≥98% at ½·L·J·ln(L·J). We measure, per store
// capacity, the worst and mean best-match trajectory similarity over fresh
// query iterations.
func runAblCoverage(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	t := metrics.NewTable("model", "capacity", "bound_ref", "min_best_sim", "mean_best_sim", "frac>=0.75")
	for _, cfg := range paperModels() {
		lj := cfg.Layers * cfg.RoutedExperts
		bounds := []struct {
			name string
			cap  int
		}{
			{"LJ/4", lj / 4},
			{"LJ", lj},
			{"2LJ (75% bound)", 2 * lj},
		}
		d := cfg.OptimalPrefetchDistance
		storeReqs, testReqs := c.OfflineSplit(cfg, ds)
		storeTraces := c.Traces(cfg, "store/"+ds.Name, storeReqs)
		testTraces := c.Traces(cfg, "test/"+ds.Name, testReqs)
		for _, b := range bounds {
			capacity := b.cap
			if capacity < 8 {
				capacity = 8
			}
			store := core.BuildStore(cfg, capacity, d, storeTraces)
			searcher := core.NewSearcher(store, 0)
			minSim, sumSim, n, ge := math.Inf(1), 0.0, 0, 0
			for _, q := range testReqs[:minInt(len(testReqs), 6)] {
				for _, it := range testTraces[q.ID][1:minInt(len(testTraces[q.ID]), 5)] {
					cur := searcher.NewCursor(it.Semantic)
					for l := 0; l < cfg.Layers; l++ {
						cur.Observe(it.Probs[l])
					}
					res, ok := cur.Best()
					cur.Release()
					if !ok {
						continue
					}
					if res.Score < minSim {
						minSim = res.Score
					}
					sumSim += res.Score
					if res.Score >= 0.75 {
						ge++
					}
					n++
				}
			}
			t.Row(cfg.Name, store.Len(), b.name, minSim, sumSim/float64(n), float64(ge)/float64(n))
		}
	}
	return &Output{ID: "abl-coverage", Title: "Store capacity vs similarity coverage", Table: t,
		Notes: []string{"§4.4 cites sphere-covering bounds: 2·L·J maps guarantee ≥75% similarity for any query; coverage should approach 1.0 at that capacity"}}, nil
}

// componentScorer isolates one term of FineMoE's eviction priority for the
// decomposition ablation.
type componentScorer struct {
	name string
	fn   func(ref moe.ExpertRef, m cache.Meta, now float64) float64
}

func (s componentScorer) Name() string { return s.name }
func (s componentScorer) Score(ref moe.ExpertRef, m cache.Meta, now float64) float64 {
	return s.fn(ref, m, now)
}

// runAblEvict decomposes the eviction priority: frequency-only (LFU),
// recency-only (LRU), probability-aware (1/(p·freq) without layer phase via
// the policy's scorer), and the full FineMoE priority.
func runAblEvict(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	t := metrics.NewTable("model", "LRU(recency)", "LFU(freq)", "random", "FineMoE(full)")
	for _, cfg := range paperModels() {
		d := cfg.OptimalPrefetchDistance
		row := []any{cfg.Name}
		scorers := []cache.Scorer{
			cache.LRU{},
			cache.LFU{},
			componentScorer{name: "random", fn: func(ref moe.ExpertRef, _ cache.Meta, _ float64) float64 {
				// Deterministic pseudo-random by expert identity.
				h := uint64(ref.Layer*977+ref.Expert*131) * 0x9e3779b97f4a7c15
				return float64(h%1024) / 1024
			}},
			nil, // FineMoE's own
		}
		for _, sc := range scorers {
			sc := sc
			sys := system{
				name: "FineMoE-evict",
				build: func() policy.Policy {
					return core.NewFineMoE(c.StoreProto(cfg, ds, d).Clone(), core.Options{
						PrefetchDistance: d,
						EvictionScorer:   sc,
					})
				},
				cacheFrac: leanCacheFrac,
			}
			res := runOffline(c, cfg, ds, sys, defaultBatchSize)
			row = append(row, res.HitRate)
		}
		t.Row(row...)
	}
	return &Output{ID: "abl-evict", Title: "Eviction-priority decomposition (expert hit rate)", Table: t,
		Notes: []string{"the full similarity-aware, phase-aware priority should dominate each isolated component"}}, nil
}

// runAblPrefilter sweeps the semantic prefilter (the trajectory-search
// candidate bound, a performance optimization documented in DESIGN.md §6)
// and verifies it does not change prediction quality.
func runAblPrefilter(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	sizes := []int{16, 64, 128, -1} // -1 = full store
	headers := []string{"model"}
	for _, s := range sizes {
		if s < 0 {
			headers = append(headers, "hit@full")
		} else {
			headers = append(headers, fmt.Sprintf("hit@%d", s))
		}
	}
	t := metrics.NewTable(headers...)
	for _, cfg := range paperModels() {
		d := cfg.OptimalPrefetchDistance
		_, testReqs := c.OfflineSplit(cfg, ds)
		testTraces := c.Traces(cfg, "test/"+ds.Name, testReqs)
		row := []any{cfg.Name}
		for _, size := range sizes {
			prefilter := size
			if size < 0 {
				prefilter = 0
			}
			searcher := core.NewSearcher(c.StoreProto(cfg, ds, d), prefilter)
			var hit float64
			var n int
			for _, q := range testReqs[:minInt(len(testReqs), 6)] {
				for _, it := range testTraces[q.ID] {
					if it.Index%3 != 1 {
						continue
					}
					pred := core.PredictIteration(searcher, it, core.PredictOptions{
						D: d, TopK: cfg.TopK, Dynamic: true, UseSemantic: true, UseTrajectory: true,
					})
					hit += pred.HitRate(it)
					n++
				}
			}
			row = append(row, hit/float64(n))
		}
		t.Row(row...)
	}
	return &Output{ID: "abl-prefilter", Title: "Semantic prefilter size vs prediction quality", Table: t,
		Notes: []string{"a modest prefilter (64-128 candidates) should match full-store trajectory search, validating the optimization"}}, nil
}
