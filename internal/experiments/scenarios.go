package experiments

import (
	"fmt"

	"finemoe/internal/metrics"
	"finemoe/internal/scenarios"
	"finemoe/internal/workload"
)

func init() {
	register("scenariofig",
		"Scenario gauntlet: bursty/diurnal/flash/session/multi-tenant workloads across fixed and autoscaled fleets",
		runScenarioFig)
}

// scenarioFleets enumerates the two fleets every workload shape is run
// on: the naive baseline (a fixed fleet scattering topics round-robin)
// and the full stack (queue-pressure autoscaling plus semantic-affinity
// routing). Both start at the same size, so the comparison isolates what
// elasticity and affinity buy under each traffic shape.
func scenarioFleets() []scenarios.FleetSpec {
	return []scenarios.FleetSpec{
		{Instances: 2, Router: "round-robin"},
		// The aggressive tick/sustain pairing from the autoscalefig
		// experiment: scale-up must keep pace with the sweep's
		// sub-second bursts.
		{Instances: 2, Router: "semantic-affinity", Autoscale: true,
			MinInstances: 1, MaxInstances: 4,
			HighWatermark: 1.5, LowWatermark: 1.0,
			SustainMS: 50, CooldownMS: 50, TickMS: 25},
	}
}

// scenarioMatrix builds the gauntlet: every arrival shape at the scale's
// base rate, plus a closed-loop session workload and a two-tenant mix.
func scenarioMatrix(c *Context) []scenarios.Scenario {
	ds := c.dataset(workload.LMSYSChat1M())
	rate := c.Scale.OnlineRate
	n := c.Scale.OnlineRequests
	shapes := []workload.ArrivalProcess{
		workload.Poisson{RatePerSec: rate},
		workload.BurstyMMPP(rate),
		workload.DiurnalSwing(rate),
		workload.FlashSpike(rate),
	}
	var out []scenarios.Scenario
	for _, ap := range shapes {
		for _, fl := range scenarioFleets() {
			out = append(out, scenarios.Scenario{
				Name:     ap.Name(),
				Workload: scenarios.WorkloadSpec{Dataset: ds, Arrivals: ap, Requests: n},
				Fleet:    fl,
			})
		}
	}
	// Closed-loop multi-turn sessions: follow-ups arrive after their
	// parent completes and stay semantically close to it, exercising
	// Expert Map Store reuse and semantic-affinity routing.
	sess := &workload.SessionConfig{MeanTurns: 3, ThinkTimeS: 1.0 / rate * 4, Drift: 0.05}
	for _, fl := range scenarioFleets() {
		out = append(out, scenarios.Scenario{
			Name: "sessions",
			Workload: scenarios.WorkloadSpec{
				Dataset:  ds,
				Arrivals: workload.Poisson{RatePerSec: rate / 2},
				Requests: n / 2,
				Sessions: sess,
			},
			Fleet: fl,
		})
	}
	// Two tenants with distinct datasets and traffic shapes sharing one
	// fleet: a steady LMSYS tenant plus a bursty ShareGPT tenant.
	tenants := []workload.TenantSpec{
		{Name: "steady", Dataset: ds,
			Arrivals: workload.Poisson{RatePerSec: rate / 2}, N: n / 2},
		{Name: "bursty", Dataset: c.dataset(workload.ShareGPT()),
			Arrivals: workload.BurstyMMPP(rate / 2), N: n / 2},
	}
	for _, fl := range scenarioFleets() {
		out = append(out, scenarios.Scenario{
			Name:     "two-tenant",
			Workload: scenarios.WorkloadSpec{Tenants: tenants},
			Fleet:    fl,
		})
	}
	return out
}

// scenarioRunner builds the runner on the context's model and testbed.
func scenarioRunner(c *Context) *scenarios.Runner {
	return scenarios.NewRunner(scenarios.Options{
		Model: paperModels()[0], // Mixtral-8x7B, the paper's lead model
		GPU:   c.GPU, NumGPUs: c.NumGPUs,
		StoreCapacity: c.Scale.StoreCapacity,
		MaxInput:      c.Scale.MaxInput, MaxOutput: c.Scale.MaxOutput,
		Seed:           c.Seed,
		Workers:        c.Workers,
		ClusterWorkers: c.ClusterWorkers,
	})
}

// runScenarioFig sweeps the scenario gauntlet. The headline is the bursty
// row pair: under MMPP bursts the autoscaled semantic-affinity fleet
// grows through the bursts and keeps topic locality, holding p99 TTFT
// below the fixed round-robin fleet that both scatters topics and cannot
// add capacity — the fleet-level composition of the paper's semantic
// argument with MoEless's elasticity argument.
func runScenarioFig(c *Context) (*Output, error) {
	reports, err := scenarioRunner(c).RunMatrix(scenarioMatrix(c))
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("scenario", "fleet", "requests", "served",
		"p99_ttft_s", "ttft_s", "hit_rate", "dispersion", "peak", "inst_h")
	for _, rep := range reports {
		t.Row(rep.Scenario, rep.Fleet, rep.Requests, rep.Served,
			metrics.Seconds(rep.TTFT.P99), metrics.Seconds(rep.TTFT.Mean),
			fmt.Sprintf("%.3f", rep.HitRate), fmt.Sprintf("%.2f", rep.Dispersion),
			rep.PeakInstances, fmt.Sprintf("%.5f", rep.InstanceHours))
	}
	return &Output{ID: "scenariofig",
		Title: "Scenario gauntlet across fixed round-robin and autoscaled semantic-affinity fleets",
		Table: t,
		Notes: []string{
			"headline: mmpp p99 TTFT — autoscaled semantic-affinity < fixed round-robin",
			"dispersion column: poisson ≈ 1, bursty shapes > 1",
			"sessions rows include closed-loop follow-up turns (requests > trace length)",
			"two-tenant rows partition per-tenant latency in the scenario reports",
		}}, nil
}
