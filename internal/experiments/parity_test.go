package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateParity rewrites the committed parity goldens. Run after an
// intentional behavioral change:
//
//	go test ./internal/experiments -run ExperimentParityGoldens -update-parity
var updateParity = flag.Bool("update-parity", false, "rewrite testdata/parity goldens")

// TestExperimentParityGoldens pins every registered experiment's table,
// byte for byte, against goldens recorded before the tiered-memory
// refactor. The degenerate two-tier configuration (the default every
// experiment runs under) must reproduce the pre-refactor engine results
// byte-identically, so any drift here means the refactor changed engine
// arithmetic rather than only adding the new memory axis.
func TestExperimentParityGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep runs every experiment; skipped under -short")
	}
	ctx := smallCtx()
	for _, e := range List() {
		out, err := Run(ctx, e.ID)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		got := out.Table.CSV()
		path := filepath.Join("testdata", "parity", e.ID+".csv")
		if *updateParity {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update-parity): %v", e.ID, err)
		}
		if got != string(want) {
			t.Errorf("%s: table drifted from pre-refactor golden %s\n--- want\n%s--- got\n%s",
				e.ID, path, want, got)
		}
	}
}
