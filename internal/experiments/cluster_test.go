package experiments

import "testing"

// TestClusterFigShape: semantic affinity must beat round-robin on fleet
// hit rate at every load level (the routing redesign's acceptance bar).
func TestClusterFigShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster routing sweep is not short")
	}
	out, err := Run(smallCtx(), "clusterfig")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	rows := out.Table.Rows()
	iRouter, iHit := col(t, h, "router"), col(t, h, "hit_rate")
	iLoad := col(t, h, "load_mult")
	byLoad := map[string]map[string]float64{}
	for _, r := range rows {
		if byLoad[r[iLoad]] == nil {
			byLoad[r[iLoad]] = map[string]float64{}
		}
		byLoad[r[iLoad]][r[iRouter]] = cell(t, r[iHit])
	}
	for load, m := range byLoad {
		if m["semantic-affinity"] <= m["round-robin"] {
			t.Errorf("load %s: semantic-affinity hit rate %.3f <= round-robin %.3f",
				load, m["semantic-affinity"], m["round-robin"])
		}
	}
}
