package experiments

import (
	"strconv"
	"testing"
)

// TestMemFigAcceptance pins the tiered-memory headline — the paper's
// latency-memory trade-off with host DRAM as the swept axis: shrinking
// the provisioned DRAM budget must degrade p99 TTFT monotonically
// (within tolerance), FineMoE's similarity-aware tier scorer must
// dominate LRU and LFU at every budget point, and the curve must have
// real slope (the smallest budget measurably worse than unbounded).
func TestMemFigAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("memfig sweep is not short")
	}
	out, err := Run(smallCtx(), "memfig")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	rows := out.Table.Rows()
	iScorer, iDram := col(t, h, "scorer"), col(t, h, "dram")
	iP99, iStaged := col(t, h, "p99_ttft_s"), col(t, h, "staged")
	iMem := col(t, h, "mem_pressure")

	// Collect per-scorer curves in row order (budgets ascending, the
	// unbounded degenerate point last).
	type point struct {
		dram    string
		p99     float64
		staged  int
		memPres float64
	}
	curves := map[string][]point{}
	var order []string
	for _, r := range rows {
		name := r[iScorer]
		if _, seen := curves[name]; !seen {
			order = append(order, name)
		}
		staged, err := strconv.Atoi(r[iStaged])
		if err != nil {
			t.Fatalf("non-integer staged cell %q: %v", r[iStaged], err)
		}
		curves[name] = append(curves[name], point{
			dram: r[iDram], p99: cell(t, r[iP99]),
			staged: staged, memPres: cell(t, r[iMem]),
		})
	}
	if len(order) != 3 {
		t.Fatalf("expected 3 scorer curves, got %v", order)
	}
	nBudgets := len(memfigBudgetFracs()) + 1 // + the unbounded anchor

	for _, name := range order {
		pts := curves[name]
		if len(pts) != nBudgets {
			t.Fatalf("%s: expected %d budget points, got %d", name, nBudgets, len(pts))
		}
		for k := 0; k+1 < len(pts); k++ {
			// Monotone within 2%: growing the budget must not degrade
			// the tail.
			if pts[k+1].p99 > pts[k].p99*1.02 {
				t.Errorf("%s: p99 TTFT not monotone in DRAM budget: %s=%.3fs -> %s=%.3fs",
					name, pts[k].dram, pts[k].p99, pts[k+1].dram, pts[k+1].p99)
			}
		}
		// The trade-off must have real slope: the smallest budget pays
		// measurably more than the unbounded anchor.
		smallest, unbounded := pts[0], pts[len(pts)-1]
		if smallest.p99 < unbounded.p99*1.2 {
			t.Errorf("%s: no latency-memory slope: smallest budget p99 %.3fs vs unbounded %.3fs",
				name, smallest.p99, unbounded.p99)
		}
		// Staging traffic shrinks as DRAM grows and vanishes under the
		// degenerate configuration.
		if smallest.staged == 0 {
			t.Errorf("%s: smallest DRAM budget produced no NVMe staging traffic", name)
		}
		if unbounded.staged != 0 {
			t.Errorf("%s: unbounded DRAM must not stage (got %d transfers)", name, unbounded.staged)
		}
		if unbounded.memPres != 0 {
			t.Errorf("%s: unbounded DRAM must report zero memory pressure (got %.3f)", name, unbounded.memPres)
		}
	}

	// FineMoE's tier scorer dominates LRU and LFU at every budget point.
	fine := curves[order[0]]
	if order[0] != "FineMoE" {
		t.Fatalf("first curve is %q, want FineMoE", order[0])
	}
	for _, rival := range order[1:] {
		for k, p := range curves[rival] {
			if p.dram == "unbounded" {
				continue // the degenerate anchor is outside the swept axis
			}
			if fine[k].p99 > p.p99 {
				t.Errorf("FineMoE does not dominate %s at DRAM %s: %.3fs vs %.3fs",
					rival, p.dram, fine[k].p99, p.p99)
			}
		}
	}
}
