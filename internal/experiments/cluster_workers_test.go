package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestClusterWorkersGoldenParity pins the fleet experiments against their
// committed parity goldens with the event loop sharded inside every
// simulated cluster. The goldens were recorded with the serial loop, so a
// byte-for-byte match at each worker count proves Context.ClusterWorkers
// is output-invariant all the way through the experiments layer — the
// same guarantee TestShardedLoopByteParity pins on raw ClusterResults,
// here on the figures a reader actually diffs.
func TestClusterWorkersGoldenParity(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs the fleet experiments per worker count; skipped under -short")
	}
	workerCounts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, id := range []string{"scenariofig", "autoscalefig", "clusterfig"} {
		want, err := os.ReadFile(filepath.Join("testdata", "parity", id+".csv"))
		if err != nil {
			t.Fatalf("%s: missing parity golden: %v", id, err)
		}
		for _, w := range workerCounts {
			ctx := smallCtx()
			ctx.ClusterWorkers = w
			out, err := Run(ctx, id)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, w, err)
			}
			if got := out.Table.CSV(); got != string(want) {
				t.Errorf("%s: table drifted from serial golden at cluster workers=%d\n--- want\n%s--- got\n%s",
					id, w, want, got)
			}
		}
	}
}
