package experiments

import (
	"fmt"

	"finemoe/internal/cluster"
	"finemoe/internal/metrics"
	"finemoe/internal/moe"
	"finemoe/internal/par"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

func init() {
	register("autoscalefig",
		"Fleet autoscaling: fixed 1/2/4-instance fleets vs queue-pressure autoscaling under the clusterfig load sweep",
		runAutoscaleFig)
}

// autoscaleMax bounds the autoscaled fleet at the big fixed fleet's size,
// so the comparison asks exactly the ROADMAP question: can elastic
// capacity match fixed-4 latency at high load while paying fixed-1-like
// instance-hours at low load?
const autoscaleMax = clusterInstances

// autoscaledCluster assembles the elastic fleet: one cold instance, a
// queue-pressure policy with an aggressive tick so scale-up keeps pace
// with the sweep's Poisson bursts, and an EngineFactory producing the
// same cold-store instances the fixed fleets start from.
func autoscaledCluster(c *Context, cfg moe.Config) *cluster.Cluster {
	return cluster.New(cluster.Options{
		Engines:   clusterEngines(c, cfg, 1),
		Admission: cluster.NewAlwaysAdmit(),
		Router:    cluster.NewLeastLoaded(),
		Autoscaler: cluster.NewQueuePressure(cluster.QueuePressureOptions{
			HighWatermark: 1.5,
			LowWatermark:  1.0,
			SustainMS:     50,
			CooldownMS:    50,
		}),
		EngineFactory: func(id int) *serve.Engine {
			return clusterEngines(c, cfg, 1)[0]
		},
		MinInstances:        1,
		MaxInstances:        autoscaleMax,
		AutoscaleIntervalMS: 25,
		Workers:             c.ClusterWorkers,
	})
}

// autoscaleTrace is the clusterfig sweep trace followed by a sparse
// cool-down tail at 1/8 the burst rate — the diurnal-decay phase where a
// fixed big fleet idles but an elastic one shrinks. Every fleet in the
// comparison replays the identical trace.
func autoscaleTrace(c *Context, cfg moe.Config, mult float64) []workload.Request {
	burst := clusterTrace(c, cfg, mult)
	ds := c.dataset(workload.LMSYSChat1M())
	tail := c.clampLens(workload.AzureTrace(ds, cfg.SemDim, workload.TraceConfig{
		RatePerSec: c.Scale.OnlineRate / 8, // decay is absolute, not load-scaled
		N:          c.Scale.OnlineRequests / 2,
		Seed:       c.Seed + 1,
		IDBase:     1 << 33, // disjoint from the burst's request IDs
	}))
	start := burst[len(burst)-1].ArrivalMS
	for i := range tail {
		tail[i].ArrivalMS += start
	}
	return append(append([]workload.Request(nil), burst...), tail...)
}

// autoscaleRun executes one fleet configuration against a trace.
// fixed <= 0 runs the autoscaled fleet.
func autoscaleRun(c *Context, cfg moe.Config, trace []workload.Request, fixed int) *cluster.Result {
	var cl *cluster.Cluster
	if fixed > 0 {
		cl = cluster.New(cluster.Options{
			Engines:   clusterEngines(c, cfg, fixed),
			Admission: cluster.NewAlwaysAdmit(),
			Router:    cluster.NewLeastLoaded(),
			Workers:   c.ClusterWorkers,
		})
	} else {
		cl = autoscaledCluster(c, cfg)
	}
	return cl.RunTrace(trace)
}

// runAutoscaleFig compares fixed 1/2/4-instance fleets against the
// queue-pressure autoscaled fleet across the clusterfig load sweep. The
// expected shape: at high load the autoscaled fleet grows to the big
// fleet's size fast enough to track its tail latency, while at low load
// it idles near one instance and pays a fraction of the fixed-4 fleet's
// instance-hours; shrink events fire during the post-burst drain.
func runAutoscaleFig(c *Context) (*Output, error) {
	cfg := paperModels()[0] // Mixtral-8x7B, the paper's lead model
	c.Model(cfg)            // warm the memoized simulator before fanning out
	type job struct {
		mult  float64
		trace []workload.Request
		fixed int // <= 0 runs the autoscaled fleet
	}
	var jobs []job
	for _, mult := range []float64{1, 2, 4} {
		// One trace per load multiplier, shared read-only by its four
		// fleet cells (RunTrace copies requests by value).
		trace := autoscaleTrace(c, cfg, mult)
		for _, n := range []int{1, 2, clusterInstances} {
			jobs = append(jobs, job{mult, trace, n})
		}
		jobs = append(jobs, job{mult, trace, 0})
	}
	// Each (load, fleet) cell replays the sweep trace on an independent
	// fleet; the bounded worker pool runs them concurrently and rows are
	// emitted in sweep order, keeping the table byte-identical to a
	// serial sweep.
	results := make([]*cluster.Result, len(jobs))
	par.ForEach(c.Workers, len(jobs), func(i int) {
		results[i] = autoscaleRun(c, cfg, jobs[i].trace, jobs[i].fixed)
	})
	t := metrics.NewTable("load_mult", "fleet", "p99_ttft_s", "ttft_s",
		"hit_rate", "instance_hours", "grows", "shrinks")
	for i, j := range jobs {
		res := results[i]
		if j.fixed > 0 {
			t.Row(fmt.Sprintf("%.0fx", j.mult), fmt.Sprintf("fixed-%d", j.fixed),
				metrics.Seconds(res.TTFT.P99), metrics.Seconds(res.MeanTTFT),
				fmt.Sprintf("%.3f", res.HitRate),
				fmt.Sprintf("%.5f", res.InstanceHours), 0, 0)
			continue
		}
		grows, shrinks := 0, 0
		for _, ev := range res.ScaleEvents {
			if ev.Kind == "grow" {
				grows++
			} else {
				shrinks++
			}
		}
		t.Row(fmt.Sprintf("%.0fx", j.mult), "autoscaled",
			metrics.Seconds(res.TTFT.P99), metrics.Seconds(res.MeanTTFT),
			fmt.Sprintf("%.3f", res.HitRate),
			fmt.Sprintf("%.5f", res.InstanceHours), grows, shrinks)
	}
	return &Output{ID: "autoscalefig",
		Title: "Queue-pressure autoscaling vs fixed fleets (LMSYS, Azure-style arrivals)",
		Table: t,
		Notes: []string{
			"expected shape: autoscaled p99 TTFT within 10% of fixed-4 at 4x load",
			"expected shape: autoscaled instance-hours < fixed-4 at 1x load",
			"expected shape: shrink events fire in the post-burst drain",
		}}, nil
}
