package experiments

import (
	"finemoe/internal/baselines"
	"finemoe/internal/cache"
	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// Default cache budgets, as fractions of the model's total expert bytes.
// The evaluated systems run at their natural operating points (Fig. 1b):
// MoE-Infinity trades memory for latency with a much larger resident set,
// while FineMoE and the remaining baselines run lean.
const (
	leanCacheFrac    = 0.30
	moeInfCacheFrac  = 0.55
	defaultBatchSize = 1
)

// system describes one configured competitor for a serving experiment.
type system struct {
	name string
	// build constructs a fresh policy (policies are stateful, one per
	// run).
	build func() policy.Policy
	// cacheFrac of total expert bytes (ignored when cacheBytes > 0).
	cacheFrac float64
	// cacheBytes overrides the fraction when positive.
	cacheBytes int64
	preload    bool
	// memory configures the tiered host hierarchy (zero = the degenerate
	// unbounded-DRAM configuration every paper experiment runs under);
	// hostScorer ranks bounded host-tier residents for demotion.
	memory     memsim.Hierarchy
	hostScorer cache.Scorer
}

func (s system) engineOptions(c *Context, m *moe.Model, batch int) serve.Options {
	cfg := m.Cfg
	bytes := s.cacheBytes
	if bytes <= 0 {
		bytes = int64(float64(cfg.TotalExpertBytes()) * s.cacheFrac)
	}
	return serve.Options{
		Model:      m,
		GPU:        c.GPU,
		NumGPUs:    c.NumGPUs,
		CacheBytes: bytes,
		Policy:     s.build(),
		BatchSize:  batch,
		PreloadAll: s.preload,
		Memory:     s.memory,
		HostScorer: s.hostScorer,
	}
}

// paperSystems returns the five §6.1 competitors configured for offline
// serving on a model/dataset pair. When warmStores is true the FineMoE
// store and MoE-Infinity matrices are pre-populated from the 70% split
// (offline protocol); online serving starts them empty (§6.3).
func paperSystems(c *Context, cfg moe.Config, ds workload.Dataset, warmStores bool) []system {
	m := c.Model(cfg)
	d := cfg.OptimalPrefetchDistance
	return []system{
		{
			name: "FineMoE",
			build: func() policy.Policy {
				var store *core.Store
				if warmStores {
					store = c.StoreProto(cfg, ds, d).Clone()
				} else {
					store = core.NewStore(cfg, c.Scale.StoreCapacity, d)
				}
				return core.NewFineMoE(store, core.Options{PrefetchDistance: d})
			},
			cacheFrac: leanCacheFrac,
		},
		{
			name: "MoE-Infinity",
			build: func() policy.Policy {
				var coll *baselines.EAMCollection
				if warmStores {
					coll = c.EAMProto(cfg, ds).Clone()
				} else {
					coll = baselines.NewEAMCollection(cfg)
				}
				return baselines.NewMoEInfinity(coll)
			},
			// Equal cache budgets for the §6.2 comparison — the paper
			// adds an expert cache to every baseline "for a fair
			// comparison". Fig. 1b overrides this with MoE-Infinity's
			// natural high-memory operating point.
			cacheFrac: leanCacheFrac,
		},
		{
			name:      "ProMoE",
			build:     func() policy.Policy { return baselines.NewProMoE(m) },
			cacheFrac: leanCacheFrac,
		},
		{
			name:      "Mixtral-Offload",
			build:     func() policy.Policy { return baselines.NewMixtralOffload(m) },
			cacheFrac: leanCacheFrac,
		},
		{
			name:      "DeepSpeed",
			build:     func() policy.Policy { return baselines.NewDeepSpeed() },
			cacheFrac: leanCacheFrac,
		},
	}
}

// memsimThreeTierFrac builds the three-tier hierarchy with DRAM bounded
// at the given fraction of the model's total expert bytes.
func memsimThreeTierFrac(cfg moe.Config, frac float64) memsim.Hierarchy {
	return memsim.ThreeTier(int64(float64(cfg.TotalExpertBytes()) * frac))
}

// withNoOffload prepends the No-offload upper bound (Fig. 1b only).
func withNoOffload(systems []system, cfg moe.Config) []system {
	no := system{
		name:       "No-offload",
		build:      func() policy.Policy { return baselines.NewNoOffload() },
		cacheBytes: cfg.TotalExpertBytes(),
		preload:    true,
	}
	return append([]system{no}, systems...)
}

// runOffline executes one offline serving run for a system.
func runOffline(c *Context, cfg moe.Config, ds workload.Dataset, sys system, batch int) *serve.Result {
	m := c.Model(cfg)
	_, testReqs := c.OfflineSplit(cfg, ds)
	traces := c.Traces(cfg, "test/"+ds.Name, testReqs)
	eng := serve.New(sys.engineOptions(c, m, batch))
	return eng.RunOffline(testReqs, traces)
}

// runOnline executes one online serving run for a system (§6.3: stores
// start empty).
func runOnline(c *Context, cfg moe.Config, ds workload.Dataset, sys system) *serve.Result {
	m := c.Model(cfg)
	trace := c.OnlineTrace(cfg, ds)
	traces := c.Traces(cfg, "online/"+ds.Name, trace)
	opts := sys.engineOptions(c, m, defaultBatchSize)
	opts.MaxBatch = 8
	eng := serve.New(opts)
	return eng.RunOnline(trace, traces)
}
