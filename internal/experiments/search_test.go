package experiments

import "testing"

// TestSearchFigAcceptance pins the approximate-search experiment's shape:
// the exact row has recall 1 (it IS the reference), modeled semantic
// search latency is non-increasing as nprobe falls, recall degrades
// monotonically-ish but stays useful at nprobe=8, and the end-to-end hit
// rate never collapses (the dynamic-threshold selection absorbs small
// search errors).
func TestSearchFigAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("searchfig sweep is not short")
	}
	out, err := Run(smallCtx(), "searchfig")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	rows := out.Table.Rows()
	iProbe, iRecall := col(t, h, "nprobe"), col(t, h, "recall@1")
	iHit, iSem := col(t, h, "hit_rate"), col(t, h, "sem_search_ms")
	if len(rows) != len(searchProbes()) {
		t.Fatalf("sweep has %d rows, want %d", len(rows), len(searchProbes()))
	}
	if rows[0][iProbe] != "exact" {
		t.Fatalf("first row is %q, want the exact anchor", rows[0][iProbe])
	}
	exactRecall := cell(t, rows[0][iRecall])
	exactHit := cell(t, rows[0][iHit])
	if exactRecall != 1 {
		t.Fatalf("exact-mode recall %.3f, want 1 (parity contract)", exactRecall)
	}
	prevSem := cell(t, rows[0][iSem])
	for _, r := range rows[1:] {
		sem := cell(t, r[iSem])
		if sem > prevSem {
			t.Errorf("nprobe=%s: modeled search latency %.4f above the previous row's %.4f",
				r[iProbe], sem, prevSem)
		}
		prevSem = sem
		if rec := cell(t, r[iRecall]); rec > 1 || rec <= 0.3 {
			t.Errorf("nprobe=%s: recall %.3f out of plausible range", r[iProbe], rec)
		}
		if hit := cell(t, r[iHit]); hit < exactHit-0.05 {
			t.Errorf("nprobe=%s: hit rate %.3f collapsed vs exact %.3f", r[iProbe], hit, exactHit)
		}
	}
	// The most aggressive setting must model a real latency win.
	last := cell(t, rows[len(rows)-1][iSem])
	if last >= cell(t, rows[0][iSem]) {
		t.Errorf("nprobe=1 modeled latency %.4f not below exact %.4f", last, cell(t, rows[0][iSem]))
	}
}
