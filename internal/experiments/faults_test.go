package experiments

import (
	"testing"

	"finemoe/internal/scenarios"
)

// faultReports runs the fault gauntlet once and indexes the reports by
// "scenario/resilience" cell name.
func faultReports(t *testing.T, c *Context) map[string]*scenarios.Report {
	t.Helper()
	cells := faultMatrix(c)
	scs := make([]scenarios.Scenario, len(cells))
	for i, cell := range cells {
		scs[i] = cell.sc
	}
	reports, err := scenarioRunner(c).RunMatrix(scs)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*scenarios.Report, len(reports))
	for i, rep := range reports {
		byName[cells[i].sc.Name] = rep
	}
	return byName
}

// TestFaultFigAcceptance pins the experiment's headline claims: under
// the crash+brownout+stall gauntlet, the resilience policy strictly
// beats the unprotected fleet on goodput and failed-request fraction;
// armed-but-idle resilience changes no outcome; hedging wins exist in
// the brownout cell; and the whole sweep — fault event accounting
// included — is byte-deterministic run to run.
func TestFaultFigAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fault gauntlet twice; skipped under -short")
	}
	c := smallCtx()
	reps := faultReports(t, c)

	frac := func(rep *scenarios.Report) float64 {
		return float64(rep.Failed) / float64(rep.Requests)
	}
	off, on := reps["gauntlet/off"], reps["gauntlet/on"]
	if off.Failed == 0 || off.Lost == 0 {
		t.Fatalf("unprotected gauntlet lost nothing (failed=%d lost=%d): fault schedule too gentle to test resilience",
			off.Failed, off.Lost)
	}
	if on.Goodput <= float64(off.Served)/float64(off.Requests) {
		t.Fatalf("resilience-on goodput %.4f does not beat resilience-off %.4f",
			on.Goodput, float64(off.Served)/float64(off.Requests))
	}
	if frac(on) >= frac(off) {
		t.Fatalf("resilience-on failed fraction %.4f not below resilience-off %.4f", frac(on), frac(off))
	}
	if on.Crashes != 1 || on.Retries == 0 {
		t.Fatalf("gauntlet/on crashes=%d retries=%d: expected one crash recovered via retries",
			on.Crashes, on.Retries)
	}
	for name, rep := range reps {
		if rep.Served+rep.Failed != rep.Admitted {
			t.Errorf("%s: served %d + failed %d != admitted %d", name, rep.Served, rep.Failed, rep.Admitted)
		}
	}

	// Armed-but-idle resilience is free: the none/ pair differs only in
	// the policy being enabled, and every outcome matches.
	base, armed := reps["none/off"], reps["none/on"]
	if base.Served != armed.Served || base.TTFT != armed.TTFT || base.E2E != armed.E2E ||
		armed.Failed != 0 || armed.Retries != 0 || armed.HedgedWins != 0 {
		t.Fatalf("armed-but-idle resilience changed outcomes:\noff: %+v\non:  %+v", base, armed)
	}

	// The brownout cell exercises hedged re-dispatch: some hedges must
	// win, and every offered request is still served exactly once.
	bro := reps["brownout/on"]
	if bro.HedgedWins == 0 {
		t.Fatal("brownout/on recorded no hedged wins")
	}
	if bro.Served != bro.Requests {
		t.Fatalf("brownout/on served %d of %d despite hedging", bro.Served, bro.Requests)
	}

	// Byte-determinism: a second full sweep serializes identically,
	// fault and availability accounting included.
	again := faultReports(t, c)
	for name, rep := range reps {
		if got, want := again[name].Serialize(), rep.Serialize(); got != want {
			t.Fatalf("%s: rerun diverged\n--- first\n%s--- second\n%s", name, want, got)
		}
	}
}
