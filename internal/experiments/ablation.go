package experiments

import (
	"fmt"

	"finemoe/internal/baselines"
	"finemoe/internal/cache"
	"finemoe/internal/core"
	"finemoe/internal/metrics"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/serve"
	"finemoe/internal/tensor"
	"finemoe/internal/workload"
)

func init() {
	register("fig14a", "Fig 14a: ablation of expert pattern tracking approaches", runFig14a)
	register("fig14b", "Fig 14b: ablation of prefetching and caching policies", runFig14b)
	register("fig15", "Fig 15: performance vs prefetch distance", runFig15)
	register("abl-sync", "Ablation: synchronous vs asynchronous map search", runAblSync)
	register("abl-ep", "Ablation: expert-parallel degree", runAblEP)
	register("abl-dedup", "Ablation: store dedup vs FIFO replacement", runAblDedup)
}

// runFig14a evaluates the five expert-pattern tracking approaches at each
// model's profiled prefetch distance: Speculate, Hit count (EAM), Map(T),
// Map(T+S), Map(T+S+δ). All run through the same prediction protocol for
// fairness (§6.6).
func runFig14a(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	t := metrics.NewTable("model", "Speculate", "HitCount", "Map(T)", "Map(T+S)", "Map(T+S+d)")
	for _, cfg := range paperModels() {
		m := c.Model(cfg)
		d := cfg.OptimalPrefetchDistance
		_, testReqs := c.OfflineSplit(cfg, ds)
		testTraces := c.Traces(cfg, "test/"+ds.Name, testReqs)
		searcher := core.NewSearcher(c.StoreProto(cfg, ds, d), 128)
		coll := c.EAMProto(cfg, ds)

		var spec, hitCount, mapT, mapTS, mapTSD float64
		var n int
		probs := make([]float64, cfg.RoutedExperts)
		for _, q := range testReqs[:minInt(len(testReqs), 8)] {
			iters := testTraces[q.ID]
			history := baselines.NewEAM(cfg)
			for _, it := range iters {
				if it.Index%3 == 1 {
					// Speculate: gate applied to the hidden
					// state d layers back.
					sets := make([][]int, cfg.Layers)
					for l := d; l < cfg.Layers; l++ {
						m.Speculate(it.Hidden[l-d], l, probs)
						sets[l] = tensor.TopK(probs, cfg.TopK)
					}
					spec += moe.IterationHitRate(it, sets)

					hitCount += moe.IterationHitRate(it,
						baselines.CoarsePredict(cfg, coll, history, cfg.TopK))

					mapT += core.PredictIteration(searcher, it, core.PredictOptions{
						D: d, TopK: cfg.TopK, UseTrajectory: true,
					}).HitRate(it)
					mapTS += core.PredictIteration(searcher, it, core.PredictOptions{
						D: d, TopK: cfg.TopK, UseTrajectory: true, UseSemantic: true,
					}).HitRate(it)
					mapTSD += core.PredictIteration(searcher, it, core.PredictOptions{
						D: d, TopK: cfg.TopK, UseTrajectory: true, UseSemantic: true, Dynamic: true,
					}).HitRate(it)
					n++
				}
				history.ObserveIteration(cfg, it)
			}
		}
		f := float64(n)
		t.Row(cfg.Name, spec/f, hitCount/f, mapT/f, mapTS/f, mapTSD/f)
	}
	return &Output{ID: "fig14a", Title: "Expert pattern tracking ablation (LMSYS)", Table: t,
		Notes: []string{
			"paper shape: hit rate rises as expert-map features are restored (Map(T) < Map(T+S) <= Map(T+S+d))",
			"paper places request-level hit counting last; in this reproduction speculation at the profiled distance can fall below it (see EXPERIMENTS.md)",
		}}, nil
}

// runFig14b compares eviction policies under the full FineMoE prefetching
// stack: LRU, LFU, and FineMoE's similarity-aware 1/(p·freq).
func runFig14b(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	t := metrics.NewTable("model", "LRU", "LFU", "FineMoE")
	for _, cfg := range paperModels() {
		d := cfg.OptimalPrefetchDistance
		row := []any{cfg.Name}
		for _, scorer := range []cache.Scorer{cache.LRU{}, cache.LFU{}, nil} {
			sys := system{
				name: "FineMoE-evict",
				build: func() policy.Policy {
					return core.NewFineMoE(c.StoreProto(cfg, ds, d).Clone(), core.Options{
						PrefetchDistance: d,
						EvictionScorer:   scorer,
					})
				},
				cacheFrac: leanCacheFrac,
			}
			res := runOffline(c, cfg, ds, sys, defaultBatchSize)
			row = append(row, res.HitRate)
		}
		t.Row(row...)
	}
	return &Output{ID: "fig14b", Title: "Prefetching and caching ablation (expert hit rate)", Table: t,
		Notes: []string{"paper shape: LRU < LFU < FineMoE's similarity-aware eviction"}}, nil
}

// runFig15 sweeps FineMoE's prefetch distance d from 1 to 8 per model.
func runFig15(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	distances := []int{1, 2, 3, 4, 5, 6, 7, 8}
	headers := []string{"model", "metric"}
	for _, d := range distances {
		headers = append(headers, fmt.Sprintf("d=%d", d))
	}
	t := metrics.NewTable(headers...)
	plot := metrics.NewPlot("Fig 15 — FineMoE TPOT vs prefetch distance", "d (layers)", "tpot (s)")
	for _, cfg := range paperModels() {
		ttftRow := []any{cfg.Name, "ttft_s"}
		tpotRow := []any{cfg.Name, "tpot_s"}
		series := metrics.Series{Name: cfg.Name}
		for _, d := range distances {
			d := d
			sys := system{
				name: "FineMoE",
				build: func() policy.Policy {
					return core.NewFineMoE(c.StoreProto(cfg, ds, d).Clone(),
						core.Options{PrefetchDistance: d})
				},
				cacheFrac: leanCacheFrac,
			}
			res := runOffline(c, cfg, ds, sys, defaultBatchSize)
			ttftRow = append(ttftRow, metrics.Seconds(res.MeanTTFT))
			tpotRow = append(tpotRow, metrics.Seconds(res.MeanTPOT))
			series.X = append(series.X, float64(d))
			series.Y = append(series.Y, res.MeanTPOT/1000)
		}
		t.Row(ttftRow...)
		t.Row(tpotRow...)
		plot.Add(series)
	}
	return &Output{ID: "fig15", Title: "FineMoE performance vs prefetch distance", Table: t,
		Plots: []string{plot.String()},
		Notes: []string{"paper shape: small d cannot hide search/transfer latency, large d degrades hit rate; paper profiles d=3/6/4 for Mixtral/Qwen/Phi"}}, nil
}

// runAblSync contrasts FineMoE's asynchronous publisher/subscriber search
// pipeline with a synchronous variant that blocks inference on every search
// (the design §4.3 argues against).
func runAblSync(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	t := metrics.NewTable("model", "mode", "ttft_s", "tpot_s", "hit_rate")
	for _, cfg := range paperModels() {
		d := cfg.OptimalPrefetchDistance
		for _, sync := range []bool{false, true} {
			sync := sync
			sys := system{
				name: "FineMoE",
				build: func() policy.Policy {
					return core.NewFineMoE(c.StoreProto(cfg, ds, d).Clone(), core.Options{
						PrefetchDistance:  d,
						SynchronousSearch: sync,
					})
				},
				cacheFrac: leanCacheFrac,
			}
			mode := "async (FineMoE)"
			if sync {
				mode = "synchronous"
			}
			res := runOffline(c, cfg, ds, sys, defaultBatchSize)
			t.Row(cfg.Name, mode, metrics.Seconds(res.MeanTTFT),
				metrics.Seconds(res.MeanTPOT), res.HitRate)
		}
	}
	return &Output{ID: "abl-sync", Title: "Synchronous vs asynchronous map search", Table: t,
		Notes: []string{"asynchronous search must not be slower; it hides search latency behind inference (§4.3)"}}, nil
}

// runAblEP sweeps the expert-parallel degree for FineMoE on Mixtral.
func runAblEP(c *Context) (*Output, error) {
	cfg := moe.Mixtral8x7B()
	ds := workload.LMSYSChat1M()
	d := cfg.OptimalPrefetchDistance
	t := metrics.NewTable("gpus", "ttft_s", "tpot_s", "hit_rate")
	m := c.Model(cfg)
	_, testReqs := c.OfflineSplit(cfg, ds)
	traces := c.Traces(cfg, "test/"+ds.Name, testReqs)
	for _, g := range []int{1, 2, 6} {
		pol := core.NewFineMoE(c.StoreProto(cfg, ds, d).Clone(), core.Options{PrefetchDistance: d})
		eng := serve.New(serve.Options{
			Model: m, GPU: c.GPU, NumGPUs: g,
			CacheBytes: int64(float64(cfg.TotalExpertBytes()) * leanCacheFrac),
			Policy:     pol,
		})
		res := eng.RunOffline(testReqs, traces)
		t.Row(g, metrics.Seconds(res.MeanTTFT), metrics.Seconds(res.MeanTPOT), res.HitRate)
	}
	return &Output{ID: "abl-ep", Title: "Expert parallelism degree (FineMoE, Mixtral)", Table: t,
		Notes: []string{"higher EP parallelizes transfers and expert compute across links (§7 discussion)"}}, nil
}

// runAblDedup contrasts redundancy-scored dedup with FIFO replacement at
// equal store capacity, measuring searched similarity scores.
func runAblDedup(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	t := metrics.NewTable("model", "replacement", "mean_sem_score", "mean_traj_score")
	for _, cfg := range paperModels() {
		d := cfg.OptimalPrefetchDistance
		storeReqs, testReqs := c.OfflineSplit(cfg, ds)
		storeTraces := c.Traces(cfg, "store/"+ds.Name, storeReqs)
		testTraces := c.Traces(cfg, "test/"+ds.Name, testReqs)
		// A small store forces replacement pressure so the policies
		// actually differ.
		capacity := c.Scale.StoreCapacity / 4
		for _, fifo := range []bool{false, true} {
			store := core.NewStore(cfg, capacity, d)
			store.SetDedupDisabled(fifo)
			for id := uint64(0); id < uint64(len(storeReqs)); id++ {
				for _, it := range storeTraces[storeReqs[id].ID] {
					store.AddIteration(storeReqs[id].ID, it)
				}
			}
			searcher := core.NewSearcher(store, 128)
			var semSum, trajSum float64
			var semN, trajN int
			for _, q := range testReqs[:minInt(len(testReqs), 6)] {
				for _, it := range testTraces[q.ID][1:minInt(len(testTraces[q.ID]), 4)] {
					pred := core.PredictIteration(searcher, it, core.PredictOptions{
						D: d, TopK: cfg.TopK, Dynamic: true, UseSemantic: true, UseTrajectory: true,
					})
					semSum += pred.SemScore
					semN++
					for _, s := range pred.TrajScores {
						trajSum += s
						trajN++
					}
				}
			}
			mode := "dedup (FineMoE)"
			if fifo {
				mode = "FIFO"
			}
			t.Row(cfg.Name, mode, semSum/float64(semN), trajSum/float64(trajN))
		}
	}
	return &Output{ID: "abl-dedup", Title: "Store dedup vs FIFO replacement", Table: t,
		Notes: []string{"dedup keeps the store diverse, raising searched similarity under capacity pressure (§4.4)"}}, nil
}
