package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// smallCtx returns a fresh context at test scale.
func smallCtx() *Context { return NewContext(Small, 1234) }

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(strings.TrimSuffix(s, " (async)"))
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q: %v", s, err)
	}
	return v
}

// col returns the index of a header column.
func col(t *testing.T, headers []string, name string) int {
	t.Helper()
	for i, h := range headers {
		if h == name {
			return i
		}
	}
	t.Fatalf("column %q not in %v", name, headers)
	return -1
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"tab1", "fig1b", "fig3a", "fig3b", "fig3c", "fig4", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14a", "fig14b", "fig15",
		"fig16a", "fig16b", "fig17", "fig18",
		"abl-sync", "abl-ep", "abl-dedup",
		"abl-coverage", "abl-evict", "abl-prefilter",
		"clusterfig", "autoscalefig", "scenariofig", "searchfig", "memfig",
		"faultfig",
	}
	have := map[string]bool{}
	for _, e := range List() {
		have[e.ID] = true
		if e.Title == "" {
			t.Errorf("experiment %s has no title", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(have), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run(smallCtx(), "nope"); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

// TestAllExperimentsRun executes every registered experiment at small scale
// and validates output structure. Shared context amortizes trace building.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep is not short")
	}
	c := smallCtx()
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(c)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if out.ID != e.ID {
				t.Fatalf("output ID %q != %q", out.ID, e.ID)
			}
			if len(out.Table.Rows()) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if out.String() == "" {
				t.Fatal("empty render")
			}
			// Figure experiments with curves must ship ASCII plots.
			switch e.ID {
			case "fig3c", "fig4", "fig11", "fig12", "fig15":
				if len(out.Plots) == 0 {
					t.Fatalf("%s produced no plots", e.ID)
				}
				for _, p := range out.Plots {
					if !strings.Contains(p, "|") {
						t.Fatalf("%s plot missing axis:\n%s", e.ID, p)
					}
				}
			}
		})
	}
}

// TestTab1Values spot-checks Table 1 numbers against the paper.
func TestTab1Values(t *testing.T) {
	out, err := Run(smallCtx(), "tab1")
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Table.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	h := out.Table.Header()
	inactive := col(t, h, "inactive_pct")
	wantPct := map[string]float64{"Mixtral-8x7B": 72, "Qwen1.5-MoE": 81, "Phi-3.5-MoE": 84}
	for _, r := range rows {
		if want := wantPct[r[0]]; want != 0 {
			if got := cell(t, r[inactive]); got < want-2 || got > want+2 {
				t.Errorf("%s inactive %.0f%%, paper %v%%", r[0], got, want)
			}
		}
	}
}

// TestFig10Shape verifies the paper's headline orderings at small scale:
// FineMoE has the lowest TPOT, DeepSpeed hits 1.0 with the worst latency,
// and FineMoE's hit rate beats MoE-Infinity's.
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("serving comparison is not short")
	}
	out, err := Run(smallCtx(), "fig10")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	sysCol := col(t, h, "system")
	tpotCol := col(t, h, "tpot_s")
	hitCol := col(t, h, "hit_rate")
	dsCol := col(t, h, "dataset")
	modelCol := col(t, h, "model")

	type key struct{ ds, model string }
	tpot := map[key]map[string]float64{}
	hit := map[key]map[string]float64{}
	for _, r := range out.Table.Rows() {
		k := key{r[dsCol], r[modelCol]}
		if tpot[k] == nil {
			tpot[k] = map[string]float64{}
			hit[k] = map[string]float64{}
		}
		tpot[k][r[sysCol]] = cell(t, r[tpotCol])
		hit[k][r[sysCol]] = cell(t, r[hitCol])
	}
	for k, m := range tpot {
		for sys, v := range m {
			if sys == "FineMoE" {
				continue
			}
			if m["FineMoE"] >= v {
				t.Errorf("%v: FineMoE TPOT %.3f not below %s %.3f", k, m["FineMoE"], sys, v)
			}
		}
		if m["DeepSpeed"] <= m["MoE-Infinity"] {
			t.Errorf("%v: DeepSpeed TPOT %.3f not worst (MoE-Infinity %.3f)", k, m["DeepSpeed"], m["MoE-Infinity"])
		}
	}
	for k, m := range hit {
		if m["DeepSpeed"] != 1 {
			t.Errorf("%v: DeepSpeed hit rate %.3f != 1", k, m["DeepSpeed"])
		}
		if m["FineMoE"] <= m["MoE-Infinity"] {
			t.Errorf("%v: FineMoE hit %.3f not above MoE-Infinity %.3f", k, m["FineMoE"], m["MoE-Infinity"])
		}
	}
}

// TestFig14aShape: full expert-map features must beat request-level hit
// counting for every model.
func TestFig14aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is not short")
	}
	out, err := Run(smallCtx(), "fig14a")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	full := col(t, h, "Map(T+S+d)")
	hitCount := col(t, h, "HitCount")
	mapTS := col(t, h, "Map(T+S)")
	for _, r := range out.Table.Rows() {
		if cell(t, r[full]) <= cell(t, r[hitCount]) {
			t.Errorf("%s: Map(T+S+d) %.3f not above HitCount %.3f", r[0], cell(t, r[full]), cell(t, r[hitCount]))
		}
		if cell(t, r[full]) < cell(t, r[mapTS])-0.02 {
			t.Errorf("%s: dynamic threshold hurt hit rate: %.3f vs %.3f", r[0], cell(t, r[full]), cell(t, r[mapTS]))
		}
	}
}

// TestFig4Shape: fine-grained prediction must dominate coarse-grained at
// every distance.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("distance sweep is not short")
	}
	out, err := Run(smallCtx(), "fig4")
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Table.Rows()
	for i := 0; i+1 < len(rows); i += 2 {
		fine, coarse := rows[i], rows[i+1]
		if fine[1] != "fine-grained" || coarse[1] != "coarse-grained" {
			t.Fatalf("row layout unexpected: %v / %v", fine[:2], coarse[:2])
		}
		var fineWins int
		var cols int
		for j := 2; j < len(fine); j++ {
			if fine[j] == "-" || coarse[j] == "-" {
				continue
			}
			cols++
			if cell(t, fine[j]) > cell(t, coarse[j]) {
				fineWins++
			}
		}
		if fineWins*2 < cols*2-cols/2 { // allow rare ties at extreme distance
			t.Errorf("%s: fine-grained won only %d/%d distances", fine[0], fineWins, cols)
		}
	}
}

// TestFig9Shape: correlations must be strongly positive.
func TestFig9Shape(t *testing.T) {
	out, err := Run(smallCtx(), "fig9")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	sem := col(t, h, "pearson_semantic")
	traj := col(t, h, "pearson_trajectory")
	for _, r := range out.Table.Rows() {
		if cell(t, r[sem]) < 0.5 || cell(t, r[traj]) < 0.5 {
			t.Errorf("weak correlation for %s/%s: sem %.3f traj %.3f",
				r[0], r[1], cell(t, r[sem]), cell(t, r[traj]))
		}
	}
}

// TestFig18Shape: Qwen maps largest; 32K maps < 200 MB.
func TestFig18Shape(t *testing.T) {
	out, err := Run(smallCtx(), "fig18")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	last := col(t, h, "32K_maps_MB")
	vals := map[string]float64{}
	for _, r := range out.Table.Rows() {
		vals[r[0]] = cell(t, r[last])
	}
	if vals["Qwen1.5-MoE"] >= 200 {
		t.Errorf("Qwen 32K store %.1f MB, paper bound <200", vals["Qwen1.5-MoE"])
	}
	if !(vals["Qwen1.5-MoE"] > vals["Phi-3.5-MoE"] && vals["Phi-3.5-MoE"] > vals["Mixtral-8x7B"]) {
		t.Errorf("store size ordering wrong: %v", vals)
	}
}

// TestFig3bShape: coarse entropy must exceed fine for every model/dataset.
func TestFig3bShape(t *testing.T) {
	out, err := Run(smallCtx(), "fig3b")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	coarse := col(t, h, "coarse_entropy")
	fine := col(t, h, "fine_entropy")
	for _, r := range out.Table.Rows() {
		if cell(t, r[coarse]) <= cell(t, r[fine]) {
			t.Errorf("%s/%s: coarse %.3f <= fine %.3f", r[0], r[1], cell(t, r[coarse]), cell(t, r[fine]))
		}
	}
}

// TestAblSyncShape: asynchronous search must not be slower than the
// synchronous ablation.
func TestAblSyncShape(t *testing.T) {
	if testing.Short() {
		t.Skip("serving ablation is not short")
	}
	out, err := Run(smallCtx(), "abl-sync")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	tpotCol := col(t, h, "tpot_s")
	rows := out.Table.Rows()
	for i := 0; i+1 < len(rows); i += 2 {
		async := cell(t, rows[i][tpotCol])
		sync := cell(t, rows[i+1][tpotCol])
		if async > sync*1.001 {
			t.Errorf("%s: async TPOT %.4f above sync %.4f", rows[i][0], async, sync)
		}
	}
}

// TestAblPrefilterShape: the semantic prefilter must not change prediction
// quality materially (it only bounds search cost).
func TestAblPrefilterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("prediction sweep is not short")
	}
	out, err := Run(smallCtx(), "abl-prefilter")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	at64 := col(t, h, "hit@64")
	atFull := col(t, h, "hit@full")
	for _, r := range out.Table.Rows() {
		if diff := cell(t, r[at64]) - cell(t, r[atFull]); diff < -0.03 || diff > 0.06 {
			t.Errorf("%s: prefilter@64 %.3f deviates from full %.3f", r[0], cell(t, r[at64]), cell(t, r[atFull]))
		}
	}
}

// TestAblCoverageShape: coverage must reach ~1.0 at the §4.4 2LJ bound.
func TestAblCoverageShape(t *testing.T) {
	out, err := Run(smallCtx(), "abl-coverage")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	frac := col(t, h, "frac>=0.75")
	ref := col(t, h, "bound_ref")
	for _, r := range out.Table.Rows() {
		if strings.Contains(r[ref], "2LJ") && cell(t, r[frac]) < 0.95 {
			t.Errorf("%s: 75%%-similarity coverage %.3f below the §4.4 bound expectation", r[0], cell(t, r[frac]))
		}
	}
}

// TestFig14bShape: FineMoE's eviction must lead (or tie within noise) and
// the ordering must hold strictly where capacity pressure exists (Mixtral's
// 30%-of-experts cache).
func TestFig14bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("serving ablation is not short")
	}
	out, err := Run(smallCtx(), "fig14b")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	lru, lfu, fine := col(t, h, "LRU"), col(t, h, "LFU"), col(t, h, "FineMoE")
	for _, r := range out.Table.Rows() {
		if cell(t, r[fine]) < cell(t, r[lru])-0.02 || cell(t, r[fine]) < cell(t, r[lfu])-0.02 {
			t.Errorf("%s: FineMoE eviction %.3f not leading (LRU %.3f, LFU %.3f)",
				r[0], cell(t, r[fine]), cell(t, r[lru]), cell(t, r[lfu]))
		}
		if r[0] == "Mixtral-8x7B" {
			if !(cell(t, r[lru]) < cell(t, r[lfu]) && cell(t, r[lfu]) < cell(t, r[fine])) {
				t.Errorf("Mixtral: eviction ordering LRU<LFU<FineMoE violated: %.3f %.3f %.3f",
					cell(t, r[lru]), cell(t, r[lfu]), cell(t, r[fine]))
			}
		}
	}
}
