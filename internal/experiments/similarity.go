package experiments

import (
	"fmt"

	"finemoe/internal/core"
	"finemoe/internal/metrics"
	"finemoe/internal/moe"
	"finemoe/internal/tensor"
	"finemoe/internal/workload"
)

func init() {
	register("fig8", "Fig 8: expert hit rate vs semantic/trajectory similarity", runFig8)
	register("fig9", "Fig 9: Pearson correlation between similarity and hit rate", runFig9)
	register("fig16a", "Fig 16a: similarity scores vs Expert Map Store capacity", runFig16a)
	register("fig18", "Fig 18: Expert Map Store CPU memory footprint", runFig18)
}

// pairSample holds the pairwise statistics behind Figs 8 and 9: for pairs
// of iterations, their semantic similarity, trajectory similarity, and
// expert overlap (hit rate if one's map predicted the other).
type pairSample struct {
	sem, traj, overlap []float64
}

// collectPairs exhausts pairwise iteration comparisons over a prompt
// population (§4.2.3's methodology).
func collectPairs(c *Context, cfg moe.Config, ds workload.Dataset) pairSample {
	traces := motivTraces(c, cfg, ds)
	// One decode iteration per request keeps the pair count quadratic in
	// prompts, as in the paper's per-prompt data points.
	type point struct {
		it *moe.Iteration
	}
	var pts []point
	for _, iters := range traces {
		if len(iters) > 1 {
			pts = append(pts, point{it: iters[1]})
		}
	}
	var out pairSample
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			a, b := pts[i].it, pts[j].it
			out.sem = append(out.sem, tensor.Cosine(a.Semantic, b.Semantic))
			out.traj = append(out.traj, tensor.Cosine(moe.FlattenProbs(a, -1), moe.FlattenProbs(b, -1)))
			out.overlap = append(out.overlap, moe.IterationHitRate(a, b.Active))
		}
	}
	return out
}

// runFig8 buckets pairwise similarity scores and reports the mean expert
// hit rate per bucket for the three models on LMSYS.
func runFig8(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	buckets := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.01}
	headers := []string{"model", "similarity"}
	for i := 0; i+1 < len(buckets); i++ {
		headers = append(headers, fmt.Sprintf("[%.1f,%.1f)", buckets[i], buckets[i+1]))
	}
	t := metrics.NewTable(headers...)
	bucketMeans := func(score, overlap []float64) []any {
		sums := make([]float64, len(buckets)-1)
		ns := make([]int, len(buckets)-1)
		for k, s := range score {
			for b := 0; b+1 < len(buckets); b++ {
				if s >= buckets[b] && s < buckets[b+1] {
					sums[b] += overlap[k]
					ns[b]++
					break
				}
			}
		}
		out := make([]any, len(sums))
		for i := range sums {
			if ns[i] == 0 {
				out[i] = "-"
			} else {
				out[i] = sums[i] / float64(ns[i])
			}
		}
		return out
	}
	for _, cfg := range paperModels() {
		p := collectPairs(c, cfg, ds)
		t.Row(append([]any{cfg.Name, "semantic"}, bucketMeans(p.sem, p.overlap)...)...)
		t.Row(append([]any{cfg.Name, "trajectory"}, bucketMeans(p.traj, p.overlap)...)...)
	}
	return &Output{ID: "fig8", Title: "Mean expert hit rate vs similarity score (LMSYS)", Table: t,
		Notes: []string{"paper shape: hit rate increases monotonically with both similarity scores"}}, nil
}

// runFig9 computes Pearson correlation coefficients between similarity
// scores and expert hit rates across models and datasets.
func runFig9(c *Context) (*Output, error) {
	t := metrics.NewTable("dataset", "model", "pearson_semantic", "pearson_trajectory")
	for _, ds := range paperDatasets() {
		for _, cfg := range paperModels() {
			p := collectPairs(c, cfg, ds)
			t.Row(ds.Name, cfg.Name,
				tensor.Pearson(p.sem, p.overlap),
				tensor.Pearson(p.traj, p.overlap))
		}
	}
	return &Output{ID: "fig9", Title: "Pearson correlation: similarity vs hit rate", Table: t,
		Notes: []string{"paper: coefficients between 0.84 and 0.97 across all models and datasets"}}, nil
}

// runFig16a measures the mean searched similarity scores as the Expert Map
// Store capacity grows.
func runFig16a(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	fracs := []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5}
	capacities := make([]int, len(fracs))
	for i, f := range fracs {
		capacities[i] = int(f * float64(c.Scale.StoreCapacity))
	}
	headers := []string{"model", "score"}
	for _, cp := range capacities {
		headers = append(headers, fmt.Sprintf("cap%d", cp))
	}
	t := metrics.NewTable(headers...)
	for _, cfg := range paperModels() {
		d := cfg.OptimalPrefetchDistance
		storeReqs, testReqs := c.OfflineSplit(cfg, ds)
		storeTraces := c.Traces(cfg, "store/"+ds.Name, storeReqs)
		testTraces := c.Traces(cfg, "test/"+ds.Name, testReqs)
		semRow := []any{cfg.Name, "semantic"}
		trajRow := []any{cfg.Name, "trajectory"}
		for _, cp := range capacities {
			store := core.BuildStore(cfg, cp, d, storeTraces)
			searcher := core.NewSearcher(store, 128)
			var semSum, trajSum float64
			var semN, trajN int
			for _, q := range testReqs[:minInt(len(testReqs), 8)] {
				for _, it := range testTraces[q.ID][1:minInt(len(testTraces[q.ID]), 5)] {
					pred := core.PredictIteration(searcher, it, core.PredictOptions{
						D: d, TopK: cfg.TopK, Dynamic: true, UseSemantic: true, UseTrajectory: true,
					})
					if pred.SemScore >= -1 {
						semSum += pred.SemScore
						semN++
					}
					for _, s := range pred.TrajScores {
						trajSum += s
						trajN++
					}
				}
			}
			semRow = append(semRow, semSum/float64(semN))
			trajRow = append(trajRow, trajSum/float64(trajN))
		}
		t.Row(semRow...)
		t.Row(trajRow...)
	}
	return &Output{ID: "fig16a", Title: "Similarity scores vs store capacity (LMSYS)", Table: t,
		Notes: []string{"paper shape: scores rise with capacity and saturate around 1K maps"}}, nil
}

// runFig18 reports the Expert Map Store CPU footprint across capacities,
// verified against a materialized store at the smallest point.
func runFig18(c *Context) (*Output, error) {
	capacities := []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}
	headers := []string{"model", "map_bytes"}
	for _, cp := range capacities {
		headers = append(headers, fmt.Sprintf("%dK_maps_MB", cp>>10))
	}
	t := metrics.NewTable(headers...)
	for _, cfg := range paperModels() {
		row := []any{cfg.Name, cfg.MapBytes()}
		for _, cp := range capacities {
			row = append(row, metrics.MB(int64(cp)*cfg.MapBytes()))
		}
		t.Row(row...)
	}
	// Cross-check the analytic accounting against a real store.
	cfg := moe.Mixtral8x7B()
	ds := workload.LMSYSChat1M()
	store := c.StoreProto(cfg, ds, cfg.OptimalPrefetchDistance)
	expect := int64(store.Len()) * cfg.MapBytes()
	note := fmt.Sprintf("materialized store check: %d maps occupy %s MB (analytic %s MB)",
		store.Len(), metrics.MB(store.MemoryBytes()), metrics.MB(expect))
	return &Output{ID: "fig18", Title: "Expert Map Store CPU memory footprint", Table: t,
		Notes: []string{
			note,
			"paper: Qwen stores the largest maps (60 experts/layer); 32K maps stay under 200 MB",
		}}, nil
}
