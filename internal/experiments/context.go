// Package experiments reproduces every table and figure of the paper's
// evaluation (§6) as a named, runnable experiment. Each experiment returns
// a structured Output with the paper-style rows; DESIGN.md §3 maps the IDs
// to paper artifacts and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"finemoe/internal/baselines"
	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/metrics"
	"finemoe/internal/moe"
	"finemoe/internal/workload"
)

// Scale sizes the workloads. Full reproduces the paper's parameters; Small
// is used by unit tests and quick benchmark runs.
type Scale struct {
	Name string
	// StorePrompts build the Expert Map Store / EAM collection (the 70%
	// split); TestPrompts are served (the 30% split; paper samples 64).
	StorePrompts, TestPrompts int
	// StoreCapacity is the Expert Map Store size (paper default 1K).
	StoreCapacity int
	// MaxInput/MaxOutput clamp token counts (0 = dataset defaults).
	MaxInput, MaxOutput int
	// OnlineRequests/OnlineRate parameterize the Azure-style trace
	// (paper: 256 requests at 2.91 req/s).
	OnlineRequests int
	OnlineRate     float64
	// MotivPrompts sizes the analysis-only experiments (entropy,
	// similarity statistics).
	MotivPrompts int
	// Topics overrides each dataset's topic count (0 = dataset default).
	// Small scales shrink the population so the reduced store-building
	// split still covers the semantic space, as a 70% split of a large
	// corpus does at full scale.
	Topics int
}

// Full is the paper-scale configuration.
var Full = Scale{
	Name:         "full",
	StorePrompts: 96, TestPrompts: 64,
	StoreCapacity:  1000,
	OnlineRequests: 256, OnlineRate: 2.91,
	MotivPrompts: 32,
}

// Small is the fast configuration for tests and -short benchmarks.
var Small = Scale{
	Name:         "small",
	StorePrompts: 20, TestPrompts: 8,
	StoreCapacity: 250,
	MaxInput:      12, MaxOutput: 20,
	OnlineRequests: 24, OnlineRate: 8,
	MotivPrompts: 8,
	Topics:       8,
}

// Context carries the shared, memoized simulation state: models, gate
// traces, and prototype stores. Traces and stores are computed once per
// (model, dataset, role) and shared across experiments and policies, since
// gate behaviour does not depend on the serving policy.
type Context struct {
	Seed  uint64
	Scale Scale
	// GPU/NumGPUs define the default testbed (paper: 6× RTX 3090).
	GPU     memsim.GPUSpec
	NumGPUs int
	// Workers bounds the cluster-sweep experiments' run-level parallelism
	// (scenariofig's matrix, clusterfig's and autoscalefig's load × fleet
	// grids): 0 uses GOMAXPROCS, 1 forces serial. Tables are
	// byte-identical regardless of the value — runs are independent and
	// rows are emitted in sweep order.
	Workers int
	// ClusterWorkers shards the event loop inside each simulated fleet
	// (cluster.Options.Workers): <= 1 runs the serial shared-clock loop,
	// > 1 the epoch-sharded loop. Orthogonal to Workers — one parallelizes
	// across independent runs, the other within a run — and equally
	// invisible in the output: tables are byte-identical at every setting.
	ClusterWorkers int

	mu     sync.Mutex
	models map[string]*moe.Model
	reqs   map[string][]workload.Request
	traces map[string]map[uint64][]*moe.Iteration
	stores map[string]*core.Store
	eams   map[string]*baselines.EAMCollection
}

// NewContext builds a context with the paper's default testbed.
func NewContext(scale Scale, seed uint64) *Context {
	return &Context{
		Seed:    seed,
		Scale:   scale,
		GPU:     memsim.RTX3090(),
		NumGPUs: 6,
		models:  map[string]*moe.Model{},
		reqs:    map[string][]workload.Request{},
		traces:  map[string]map[uint64][]*moe.Iteration{},
		stores:  map[string]*core.Store{},
		eams:    map[string]*baselines.EAMCollection{},
	}
}

// Model returns the memoized simulated model for cfg.
func (c *Context) Model(cfg moe.Config) *moe.Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.models[cfg.Name]; ok {
		return m
	}
	m := moe.NewModel(cfg, c.Seed)
	c.models[cfg.Name] = m
	return m
}

// clampLens applies the scale's token clamps.
func (c *Context) clampLens(reqs []workload.Request) []workload.Request {
	for i := range reqs {
		if c.Scale.MaxInput > 0 && reqs[i].InputTokens > c.Scale.MaxInput {
			reqs[i].InputTokens = c.Scale.MaxInput
		}
		if c.Scale.MaxOutput > 0 && reqs[i].OutputTokens > c.Scale.MaxOutput {
			reqs[i].OutputTokens = c.Scale.MaxOutput
		}
	}
	return reqs
}

// dataset applies the scale's population overrides.
func (c *Context) dataset(ds workload.Dataset) workload.Dataset {
	if c.Scale.Topics > 0 {
		ds.Topics = c.Scale.Topics
	}
	return ds
}

// OfflineSplit returns the store-building and test request sets for a
// model/dataset pair, with the paper's fixed mean lengths (§6.2).
func (c *Context) OfflineSplit(cfg moe.Config, ds workload.Dataset) (storeReqs, testReqs []workload.Request) {
	ds = c.dataset(ds)
	key := fmt.Sprintf("off/%s/%s", cfg.Name, ds.Name)
	c.mu.Lock()
	cached, ok := c.reqs[key]
	c.mu.Unlock()
	if !ok {
		n := c.Scale.StorePrompts + c.Scale.TestPrompts
		cached = c.clampLens(ds.Sample(workload.Options{
			Dim: cfg.SemDim, N: n, Seed: c.Seed, FixedLengths: true,
		}))
		c.mu.Lock()
		c.reqs[key] = cached
		c.mu.Unlock()
	}
	return cached[:c.Scale.StorePrompts], cached[c.Scale.StorePrompts:]
}

// OnlineTrace returns the Azure-style online trace for a model/dataset.
func (c *Context) OnlineTrace(cfg moe.Config, ds workload.Dataset) []workload.Request {
	ds = c.dataset(ds)
	key := fmt.Sprintf("on/%s/%s", cfg.Name, ds.Name)
	c.mu.Lock()
	cached, ok := c.reqs[key]
	c.mu.Unlock()
	if !ok {
		cached = c.clampLens(workload.AzureTrace(ds, cfg.SemDim, workload.TraceConfig{
			RatePerSec: c.Scale.OnlineRate, N: c.Scale.OnlineRequests, Seed: c.Seed,
		}))
		c.mu.Lock()
		c.reqs[key] = cached
		c.mu.Unlock()
	}
	return cached
}

// Traces returns memoized gate traces for a request set.
func (c *Context) Traces(cfg moe.Config, key string, reqs []workload.Request) map[uint64][]*moe.Iteration {
	full := fmt.Sprintf("tr/%s/%s", cfg.Name, key)
	c.mu.Lock()
	cached, ok := c.traces[full]
	c.mu.Unlock()
	if ok {
		return cached
	}
	m := c.Model(cfg)
	out := make(map[uint64][]*moe.Iteration, len(reqs))
	for _, q := range reqs {
		out[q.ID] = m.Trace(q.PromptSpec)
	}
	c.mu.Lock()
	c.traces[full] = out
	c.mu.Unlock()
	return out
}

// StoreProto returns the memoized prototype Expert Map Store built from the
// offline store split; callers must Clone before mutating.
func (c *Context) StoreProto(cfg moe.Config, ds workload.Dataset, d int) *core.Store {
	key := fmt.Sprintf("st/%s/%s/%d/%d", cfg.Name, ds.Name, c.Scale.StoreCapacity, d)
	c.mu.Lock()
	cached, ok := c.stores[key]
	c.mu.Unlock()
	if ok {
		return cached
	}
	storeReqs, _ := c.OfflineSplit(cfg, ds)
	traces := c.Traces(cfg, "store/"+ds.Name, storeReqs)
	s := core.BuildStore(cfg, c.Scale.StoreCapacity, d, traces)
	c.mu.Lock()
	c.stores[key] = s
	c.mu.Unlock()
	return s
}

// EAMProto returns the memoized prototype EAM collection (MoE-Infinity's
// pre-prepared activation matrices, §6.1); callers must Clone.
func (c *Context) EAMProto(cfg moe.Config, ds workload.Dataset) *baselines.EAMCollection {
	key := fmt.Sprintf("eam/%s/%s", cfg.Name, ds.Name)
	c.mu.Lock()
	cached, ok := c.eams[key]
	c.mu.Unlock()
	if ok {
		return cached
	}
	storeReqs, _ := c.OfflineSplit(cfg, ds)
	traces := c.Traces(cfg, "store/"+ds.Name, storeReqs)
	coll := baselines.BuildEAMCollection(cfg, traces)
	c.mu.Lock()
	c.eams[key] = coll
	c.mu.Unlock()
	return coll
}

// Output is an experiment's result: the paper-style table plus free-form
// notes (observations the figure caption would make).
type Output struct {
	ID    string
	Title string
	Table *metrics.Table
	Notes []string
	// Plots holds optional ASCII renderings of the figure's curves.
	Plots []string
}

// String renders the output for terminal display.
func (o *Output) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", o.ID, o.Title, o.Table.String())
	for _, p := range o.Plots {
		s += "\n" + p
	}
	for _, n := range o.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// Runner executes one experiment.
type Runner func(c *Context) (*Output, error)

// Entry describes a registered experiment.
type Entry struct {
	ID, Title string
	Run       Runner
}

var registry = map[string]Entry{}

func register(id, title string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Entry{ID: id, Title: title, Run: run}
}

// List returns all experiments sorted by ID.
func List() []Entry {
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Run executes the experiment with the given ID.
func Run(c *Context, id string) (*Output, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (use List)", id)
	}
	return e.Run(c)
}

// paperDatasets is shared by multi-dataset experiments.
func paperDatasets() []workload.Dataset { return workload.PaperDatasets() }

// paperModels is shared by multi-model experiments.
func paperModels() []moe.Config { return moe.PaperModels() }
