package experiments

import (
	"fmt"

	"finemoe/internal/cache"
	"finemoe/internal/core"
	"finemoe/internal/metrics"
	"finemoe/internal/par"
	"finemoe/internal/policy"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

func init() {
	register("memfig",
		"Latency-memory trade-off: p99 TTFT vs provisioned host DRAM across tier scorers",
		runMemFig)
}

// memfigBudgetFracs is the DRAM sweep, as fractions of the model's total
// expert bytes, smallest first. A trailing unbounded point (the
// degenerate two-tier configuration) anchors the curve's floor.
func memfigBudgetFracs() []float64 { return []float64{0.15, 0.3, 0.5, 1.0} }

// memfigScorers compares the per-tier demotion policies under an
// otherwise identical FineMoE prefetching stack: the policy's own
// similarity-aware priority (nil), plain LRU, and plain LFU — the
// Fig. 14b ablation surface extended down the hierarchy (the scorer
// drives both the GPU cache and the DRAM tier).
func memfigScorers() []struct {
	name   string
	scorer cache.Scorer
} {
	return []struct {
		name   string
		scorer cache.Scorer
	}{
		{"FineMoE", nil},
		{"LRU", cache.LRU{}},
		{"LFU", cache.LFU{}},
	}
}

// runMemFig sweeps the provisioned DRAM budget under a three-tier
// hierarchy (GPU HBM cache -> bounded DRAM -> NVMe backing behind a
// shared staging link) and serves the offline test split at each point
// (the Fig. 14b protocol, whose warm-store regime isolates the scorer
// comparison): the paper's latency-memory trade-off with host DRAM, not
// GPU HBM, as the memory axis. Shrinking DRAM forces more expert fetches
// through the contended NVMe staging link, degrading tail TTFT; the
// quality of the tier scorer decides how gracefully.
func runMemFig(c *Context) (*Output, error) {
	cfg := paperModels()[0] // Mixtral-8x7B, the paper's lead model
	ds := workload.LMSYSChat1M()
	d := cfg.OptimalPrefetchDistance
	// Warm the memoized simulator, store prototype and trace before
	// fanning out.
	c.Model(cfg)
	c.StoreProto(cfg, ds, d)
	c.OnlineTrace(cfg, ds)

	scorers := memfigScorers()
	fracs := memfigBudgetFracs()
	type job struct {
		scorer int
		budget int // index into fracs; len(fracs) = unbounded
	}
	var jobs []job
	for si := range scorers {
		for bi := 0; bi <= len(fracs); bi++ {
			jobs = append(jobs, job{si, bi})
		}
	}
	results := make([]*serve.Result, len(jobs))
	par.ForEach(c.Workers, len(jobs), func(i int) {
		j := jobs[i]
		sc := scorers[j.scorer]
		sys := system{
			name: sc.name,
			build: func() policy.Policy {
				return core.NewFineMoE(c.StoreProto(cfg, ds, d).Clone(), core.Options{
					PrefetchDistance: d,
					EvictionScorer:   sc.scorer,
				})
			},
			cacheFrac:  leanCacheFrac,
			hostScorer: sc.scorer,
		}
		if j.budget < len(fracs) {
			sys.memory = memsimThreeTierFrac(cfg, fracs[j.budget])
		}
		results[i] = runOffline(c, cfg, ds, sys, defaultBatchSize)
	})

	t := metrics.NewTable("scorer", "dram", "p99_ttft_s", "mean_ttft_s", "hit_rate", "staged", "mem_pressure")
	plot := metrics.NewPlot("memfig — p99 TTFT vs provisioned DRAM (Mixtral, LMSYS offline)",
		"DRAM (frac of expert bytes)", "p99 TTFT (s)")
	for si, sc := range scorers {
		series := metrics.Series{Name: sc.name}
		for i, j := range jobs {
			if j.scorer != si {
				continue
			}
			res := results[i]
			label, x := "unbounded", 1.25
			if j.budget < len(fracs) {
				frac := fracs[j.budget]
				label = fmt.Sprintf("%.0f%%", 100*frac)
				x = frac
			}
			// The NVMe staging traffic is the link feeding the DRAM
			// tier (Tiers[1]) from below.
			staged := 0
			if len(res.Tiers) > 2 {
				staged = res.Tiers[1].Link.Prefetches + res.Tiers[1].Link.OnDemands
			}
			t.Row(sc.name, label,
				metrics.Seconds(res.TTFT.P99), metrics.Seconds(res.MeanTTFT),
				fmt.Sprintf("%.3f", res.HitRate), staged,
				fmt.Sprintf("%.3f", res.MemoryPressure))
			series.X = append(series.X, x)
			series.Y = append(series.Y, res.TTFT.P99/1000)
		}
		plot.Add(series)
	}
	return &Output{ID: "memfig",
		Title: "Latency-memory trade-off across DRAM budgets (three-tier hierarchy)",
		Table: t,
		Plots: []string{plot.String()},
		Notes: []string{
			"expected shape: p99 TTFT degrades monotonically (within tolerance) as the DRAM budget shrinks",
			"expected shape: FineMoE's similarity-aware tier scorer dominates LRU and LFU at every budget point",
			"the unbounded column is the degenerate two-tier configuration — the seed's memory model",
		}}, nil
}
