package experiments

import (
	"fmt"

	"finemoe/internal/cluster"
	"finemoe/internal/core"
	"finemoe/internal/metrics"
	"finemoe/internal/moe"
	"finemoe/internal/par"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

func init() {
	register("clusterfig",
		"Cluster routing: round-robin vs least-loaded vs semantic affinity under an Azure-trace load sweep",
		runClusterFig)
}

// clusterInstances is the fleet size of the routing comparison (matching
// the acceptance setup: a 4-instance cluster).
const clusterInstances = 4

// clusterRouters enumerates the comparison, fresh state per run.
func clusterRouters() []struct {
	name string
	mk   func() cluster.Router
} {
	return []struct {
		name string
		mk   func() cluster.Router
	}{
		{"round-robin", cluster.NewRoundRobin},
		{"least-loaded", cluster.NewLeastLoaded},
		{"semantic-affinity", func() cluster.Router {
			return cluster.NewSemanticAffinity(cluster.SemanticAffinityOptions{})
		}},
	}
}

// clusterEngines builds a fresh fleet of n FineMoE instances with empty
// Expert Map Stores (the online protocol: stores warm as the trace flows,
// so routing decides which instance learns which prompts).
func clusterEngines(c *Context, cfg moe.Config, n int) []*serve.Engine {
	engines := make([]*serve.Engine, n)
	for i := range engines {
		pol := core.NewFineMoE(
			core.NewStore(cfg, c.Scale.StoreCapacity, cfg.OptimalPrefetchDistance),
			core.Options{})
		engines[i] = serve.New(serve.Options{
			Model: c.Model(cfg), GPU: c.GPU, NumGPUs: c.NumGPUs,
			Policy: pol,
		})
	}
	return engines
}

// clusterTrace samples an Azure-style trace at a multiple of the scale's
// base arrival rate, with the scale's token clamps.
func clusterTrace(c *Context, cfg moe.Config, mult float64) []workload.Request {
	ds := c.dataset(workload.LMSYSChat1M())
	trace := workload.AzureTrace(ds, cfg.SemDim, workload.TraceConfig{
		RatePerSec: c.Scale.OnlineRate * mult,
		N:          c.Scale.OnlineRequests,
		Seed:       c.Seed,
	})
	return c.clampLens(trace)
}

// runClusterFig compares the three routing policies on a 4-instance
// cluster under increasing load. Round-robin scatters each semantic topic
// across every instance, so all four Expert Map Stores must learn the full
// prompt population; semantic affinity concentrates each topic on one
// instance, whose store (and expert cache) has already seen it — raising
// the fleet hit rate and cutting latency, the fleet-level analogue of the
// paper's semantic-search argument (§4.2).
func runClusterFig(c *Context) (*Output, error) {
	cfg := paperModels()[0] // Mixtral-8x7B, the paper's lead model
	c.Model(cfg)            // warm the memoized simulator before fanning out
	routers := clusterRouters()
	type job struct {
		mult   float64
		trace  []workload.Request
		router int
	}
	var jobs []job
	for _, mult := range []float64{1, 2, 4} {
		// One trace per load multiplier, shared read-only by the three
		// router cells (RunTrace copies requests by value).
		trace := clusterTrace(c, cfg, mult)
		for ri := range routers {
			jobs = append(jobs, job{mult, trace, ri})
		}
	}
	// Every (load, router) cell is an independent fleet; run them on the
	// bounded worker pool and emit rows in sweep order, so the table is
	// byte-identical to the serial sweep.
	results := make([]*cluster.Result, len(jobs))
	par.ForEach(c.Workers, len(jobs), func(i int) {
		j := jobs[i]
		cl := cluster.New(cluster.Options{
			Engines:   clusterEngines(c, cfg, clusterInstances),
			Admission: cluster.NewAlwaysAdmit(),
			Router:    routers[j.router].mk(),
			Workers:   c.ClusterWorkers,
		})
		results[i] = cl.RunTrace(j.trace)
	})
	t := metrics.NewTable("load_mult", "router", "ttft_s", "p99_ttft_s", "tpot_s", "hit_rate", "rejected")
	for i, j := range jobs {
		res := results[i]
		t.Row(fmt.Sprintf("%.0fx", j.mult), routers[j.router].name,
			metrics.Seconds(res.MeanTTFT), metrics.Seconds(res.TTFT.P99),
			metrics.Seconds(res.MeanTPOT),
			fmt.Sprintf("%.3f", res.HitRate), res.Rejected)
	}
	return &Output{ID: "clusterfig",
		Title: "Cluster routing policies, 4-instance fleet (LMSYS, Azure-style arrivals)",
		Table: t,
		Notes: []string{
			"expected shape: semantic-affinity hit rate > round-robin at every load",
			"expected shape: least-loaded TTFT <= round-robin as load grows",
		}}, nil
}
