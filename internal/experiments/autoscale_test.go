package experiments

import "testing"

// TestAutoscaleFigAcceptance pins the autoscaling redesign's acceptance
// bar: the elastic fleet must track the fixed 4-instance fleet's p99
// TTFT (within 10%) at 4x load while paying fewer instance-hours than it
// at 1x load, and the sweep must exercise real shrink events.
func TestAutoscaleFigAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("autoscale sweep is not short")
	}
	out, err := Run(smallCtx(), "autoscalefig")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	rows := out.Table.Rows()
	iLoad, iFleet := col(t, h, "load_mult"), col(t, h, "fleet")
	iP99, iHours := col(t, h, "p99_ttft_s"), col(t, h, "instance_hours")
	iShrinks := col(t, h, "shrinks")

	type entry struct{ p99, hours, shrinks float64 }
	byKey := map[string]entry{}
	for _, r := range rows {
		byKey[r[iLoad]+"/"+r[iFleet]] = entry{
			p99:     cell(t, r[iP99]),
			hours:   cell(t, r[iHours]),
			shrinks: cell(t, r[iShrinks]),
		}
	}
	need := func(key string) entry {
		e, ok := byKey[key]
		if !ok {
			t.Fatalf("row %q missing from autoscalefig table", key)
		}
		return e
	}

	// Latency: elastic capacity matches the big fixed fleet's tail at
	// the highest load.
	auto4, fixed4 := need("4x/autoscaled"), need("4x/fixed-4")
	if auto4.p99 > fixed4.p99*1.10 {
		t.Errorf("4x load: autoscaled p99 TTFT %.3fs exceeds 110%% of fixed-4's %.3fs",
			auto4.p99, fixed4.p99)
	}

	// Cost: at low load the elastic fleet provisions less than the big
	// fixed fleet.
	auto1, fixed1x4 := need("1x/autoscaled"), need("1x/fixed-4")
	if auto1.hours >= fixed1x4.hours {
		t.Errorf("1x load: autoscaled instance-hours %.5f not below fixed-4's %.5f",
			auto1.hours, fixed1x4.hours)
	}

	// The sweep must exercise the shrink path, not just growth.
	totalShrinks := 0.0
	for _, load := range []string{"1x", "2x", "4x"} {
		totalShrinks += need(load + "/autoscaled").shrinks
	}
	if totalShrinks == 0 {
		t.Error("no shrink events across the sweep: scale-down path unexercised")
	}
}

// TestAutoscaleFigDeterminism: the experiment is reproducible row for
// row — scale events included — for a fixed seed.
func TestAutoscaleFigDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("run-twice autoscale sweep is not short")
	}
	a, err := Run(smallCtx(), "autoscalefig")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCtx(), "autoscalefig")
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.String() != b.Table.String() {
		t.Fatalf("autoscalefig not deterministic:\n%s\nvs\n%s",
			a.Table.String(), b.Table.String())
	}
}
