package experiments

import (
	"fmt"

	"finemoe/internal/cluster"
	"finemoe/internal/faults"
	"finemoe/internal/metrics"
	"finemoe/internal/scenarios"
	"finemoe/internal/workload"
)

func init() {
	register("faultfig",
		"Availability under faults: goodput and p99 TTFT across crash/brownout/stall scenarios with resilience off vs on",
		runFaultFig)
}

// faultCell is one row of the fault gauntlet: a named failure scenario
// run with resilience either off or on.
type faultCell struct {
	name string // failure scenario
	res  string // "off" | "on"
	sc   scenarios.Scenario
}

// faultFleet is the fixed fleet every cell runs on: three least-loaded
// instances, with headroom for one cold crash replacement. Fixed (not
// autoscaled) so availability differences come from the fault plan and
// resilience policy alone.
func faultFleet() scenarios.FleetSpec {
	return scenarios.FleetSpec{Instances: 3, Router: "least-loaded", MaxInstances: 4}
}

// faultResilience is the full protection policy: stranded requests
// re-queue on crash detection, a cold replacement instance spawns, and
// each request retries up to three times with deterministic backoff. No
// request timeout and no hedging by default — those are opt-in per cell
// (a timeout that cancels slow-but-healthy work would muddy the
// crash-recovery comparison).
func faultResilience(c *Context) cluster.ResilienceOptions {
	return cluster.ResilienceOptions{
		Enabled:        true,
		MaxRetries:     3,
		RequeueOnCrash: true,
		ReplaceOnCrash: true,
		Seed:           c.Seed,
	}
}

// faultMatrix builds the gauntlet. Fault times are fractions of the
// trace's expected span (requests / rate), so the same schedule shape
// scales from the quick test context to the paper-scale run: the crash
// lands mid-trace with a detection window long enough to strand and
// misroute work, and the brownout covers the busy middle half.
func faultMatrix(c *Context) []faultCell {
	ds := c.dataset(workload.LMSYSChat1M())
	rate := c.Scale.OnlineRate
	n := c.Scale.OnlineRequests
	span := float64(n) / rate * 1000 // expected trace span, ms

	open := scenarios.WorkloadSpec{Dataset: ds, Arrivals: workload.Poisson{RatePerSec: rate}, Requests: n}
	crash := faults.Crash{AtMS: 0.35 * span, Instance: 1, DetectMS: 0.15 * span}
	// Deep: a 10× PCIe slowdown over the busy middle half of the trace
	// cripples expert fetches on instance 2 while the other instances
	// stay healthy hedge targets.
	brown := faults.Brownout{AtMS: 0.2 * span, DurationMS: 0.5 * span,
		Link: faults.LinkPCIe, Factor: 0.1, Instance: 2}
	stall := faults.Stall{AtMS: 0.1 * span, DurationMS: 0.05 * span,
		Link: faults.LinkPCIe, Instance: faults.AllInstances}

	// The hedge fires only in the brownout cells: requests routed onto
	// the degraded instance get a speculative second copy on a healthy
	// one after a delay near the healthy-path tail latency, so hedges
	// chase brownout victims instead of duplicating the whole offered
	// load.
	hedge := faultResilience(c)
	hedge.HedgeAfterMS = 24000 / rate

	// The abusive tenant shares the fleet with a steady one while the
	// crash lands: resilience has to recover the lost work without the
	// burst loop starving the retries.
	adversarial := scenarios.WorkloadSpec{Tenants: []workload.TenantSpec{
		{Name: "steady", Dataset: ds,
			Arrivals: workload.Poisson{RatePerSec: rate / 2}, N: n / 2},
		workload.AdversarialTenant("abusive", rate/2, n/2, c.Seed+13),
	}}

	type row struct {
		name string
		w    scenarios.WorkloadSpec
		f    func(on bool) *scenarios.FaultSpec
	}
	rows := []row{
		{"none", open, func(on bool) *scenarios.FaultSpec {
			if !on {
				return nil
			}
			// Resilience armed with nothing to protect against: the row
			// pair pins that the machinery alone changes no outcome.
			return &scenarios.FaultSpec{Resilience: faultResilience(c)}
		}},
		{"crash", open, func(on bool) *scenarios.FaultSpec {
			s := &scenarios.FaultSpec{Crashes: []faults.Crash{crash}}
			if on {
				s.Resilience = faultResilience(c)
			}
			return s
		}},
		{"brownout", open, func(on bool) *scenarios.FaultSpec {
			s := &scenarios.FaultSpec{Brownouts: []faults.Brownout{brown}}
			if on {
				s.Resilience = hedge
			}
			return s
		}},
		{"gauntlet", open, func(on bool) *scenarios.FaultSpec {
			s := &scenarios.FaultSpec{
				Crashes:   []faults.Crash{crash},
				Brownouts: []faults.Brownout{brown},
				Stalls:    []faults.Stall{stall},
			}
			if on {
				s.Resilience = faultResilience(c)
			}
			return s
		}},
		{"adversarial", adversarial, func(on bool) *scenarios.FaultSpec {
			s := &scenarios.FaultSpec{Crashes: []faults.Crash{crash}}
			if on {
				s.Resilience = faultResilience(c)
			}
			return s
		}},
	}

	var out []faultCell
	for _, r := range rows {
		for _, on := range []bool{false, true} {
			res := "off"
			if on {
				res = "on"
			}
			out = append(out, faultCell{name: r.name, res: res, sc: scenarios.Scenario{
				Name:     r.name + "/" + res,
				Workload: r.w,
				Fleet:    faultFleet(),
				Faults:   r.f(on),
			}})
		}
	}
	return out
}

// runFaultFig sweeps the fault gauntlet. The headline is the gauntlet
// row pair: with resilience off, the crash strands in-flight requests
// and the detection window keeps feeding a dead instance, so goodput
// drops; with re-queue, retry and cold replacement on, the same fault
// schedule serves (nearly) everything at the cost of retried latency.
func runFaultFig(c *Context) (*Output, error) {
	cells := faultMatrix(c)
	scs := make([]scenarios.Scenario, len(cells))
	for i, cell := range cells {
		scs[i] = cell.sc
	}
	reports, err := scenarioRunner(c).RunMatrix(scs)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("scenario", "resilience", "requests", "served",
		"failed", "lost", "retries", "hedged", "goodput", "p99_ttft_s", "degraded_s")
	for i, rep := range reports {
		goodput := 0.0
		if rep.Requests > 0 {
			goodput = float64(rep.Served) / float64(rep.Requests)
		}
		t.Row(cells[i].name, cells[i].res, rep.Requests, rep.Served,
			rep.Failed, rep.Lost, rep.Retries, rep.HedgedWins,
			fmt.Sprintf("%.4f", goodput), metrics.Seconds(rep.TTFT.P99),
			fmt.Sprintf("%.3f", rep.DegradedMS/1000))
	}
	return &Output{ID: "faultfig",
		Title: "Availability under injected faults: resilience off vs on over a fixed least-loaded fleet",
		Table: t,
		Notes: []string{
			"headline: gauntlet goodput — resilience on > resilience off under the same fault schedule",
			"none rows pin that armed-but-idle resilience changes no outcome",
			"crash strands in-flight work and misroutes arrivals until detection; on-rows re-queue and replace",
			"brownout on-row hedges slow requests onto healthy instances (hedged column)",
			"degraded_s integrates per-instance brownout/stall exposure",
		}}, nil
}
