package experiments

import (
	"fmt"
	"math"

	"finemoe/internal/baselines"
	"finemoe/internal/core"
	"finemoe/internal/metrics"
	"finemoe/internal/moe"
	"finemoe/internal/workload"
)

func init() {
	register("tab1", "Table 1: characteristics of three MoE models", runTab1)
	register("fig1b", "Fig 1b: latency-memory trade-off across systems", runFig1b)
	register("fig3a", "Fig 3a: coarse vs fine-grained expert heatmaps", runFig3a)
	register("fig3b", "Fig 3b: mean entropy per layer, coarse vs fine", runFig3b)
	register("fig3c", "Fig 3c: entropy vs aggregated inference iterations", runFig3c)
	register("fig4", "Fig 4: expert hit rate vs prefetch distance, coarse vs fine", runFig4)
}

// runTab1 reproduces Table 1 from the model configurations.
func runTab1(c *Context) (*Output, error) {
	t := metrics.NewTable("model", "params_active_B", "params_total_B", "experts_active", "experts_total", "layers", "inactive_pct", "inactive_GB")
	for _, cfg := range paperModels() {
		t.Row(cfg.Name,
			fmt.Sprintf("%.1f", float64(cfg.ActiveParams())/1e9),
			fmt.Sprintf("%.1f", float64(cfg.TotalParams())/1e9),
			cfg.TopK, cfg.RoutedExperts, cfg.Layers,
			fmt.Sprintf("%.0f", 100*float64(cfg.InactiveParams())/float64(cfg.TotalParams())),
			metrics.GB(cfg.InactiveParams()*cfg.BytesPerParam),
		)
	}
	return &Output{ID: "tab1", Title: "Model characteristics", Table: t,
		Notes: []string{"paper: 72%/81%/84% inactive parameters; 67/23/70 GB inactive memory"}}, nil
}

// runFig1b measures the latency-memory operating point of each system
// (Mixtral + LMSYS): memory = dense weights + expert-cache budget, latency
// = mean TPOT.
func runFig1b(c *Context) (*Output, error) {
	cfg := moe.Mixtral8x7B()
	ds := workload.LMSYSChat1M()
	t := metrics.NewTable("system", "gpu_memory_GB", "tpot_s", "ttft_s", "hit_rate")
	for _, sys := range withNoOffload(paperSystems(c, cfg, ds, true), cfg) {
		if sys.name == "MoE-Infinity" {
			// Fig. 1b plots each system at its natural operating
			// point: MoE-Infinity trades memory for latency.
			sys.cacheFrac = moeInfCacheFrac
		}
		res := runOffline(c, cfg, ds, sys, defaultBatchSize)
		t.Row(sys.name, metrics.GB(res.GPUMemoryBytes), metrics.Seconds(res.MeanTPOT),
			metrics.Seconds(res.MeanTTFT), fmt.Sprintf("%.3f", res.HitRate))
	}
	return &Output{ID: "fig1b", Title: "Latency-memory trade-off (Mixtral-8x7B, LMSYS)", Table: t,
		Notes: []string{"paper shape: No-offload & MoE-Infinity sit low-latency/high-memory; DeepSpeed & Mixtral-Offload low-memory/high-latency; FineMoE low on both axes"}}, nil
}

// runFig3a prints a fine-grained (single-iteration) and coarse-grained
// (request-aggregated) activation heatmap for one Mixtral request.
func runFig3a(c *Context) (*Output, error) {
	cfg := moe.Mixtral8x7B()
	ds := workload.LMSYSChat1M()
	m := c.Model(cfg)
	reqs := ds.Sample(workload.Options{Dim: cfg.SemDim, N: 1, Seed: c.Seed, FixedLengths: true})
	reqs = c.clampLens(reqs)
	iters := m.Trace(reqs[0].PromptSpec)

	fine := moe.ActivationHeatmap(iters[1:2], cfg.Layers, cfg.RoutedExperts)
	coarse := moe.ActivationHeatmap(iters, cfg.Layers, cfg.RoutedExperts)

	t := metrics.NewTable("layer", "fine_grained(iter1)", "coarse_grained(request)")
	rowStr := func(row []float64, scale float64) string {
		s := ""
		for _, v := range row {
			s += fmt.Sprintf("%3.0f", v*scale)
		}
		return s
	}
	for l := 0; l < cfg.Layers; l += 4 { // sample every 4th layer for brevity
		t.Row(l, rowStr(fine[l], 1), rowStr(coarse[l], 1))
	}
	// Sparsity statistics: a fine row activates exactly TopK experts; the
	// coarse row spreads across most of them.
	fineNZ, coarseNZ := 0.0, 0.0
	for l := 0; l < cfg.Layers; l++ {
		for j := 0; j < cfg.RoutedExperts; j++ {
			if fine[l][j] > 0 {
				fineNZ++
			}
			if coarse[l][j] > 0 {
				coarseNZ++
			}
		}
	}
	denom := float64(cfg.Layers * cfg.RoutedExperts)
	return &Output{ID: "fig3a", Title: "Expert activation heatmaps (Mixtral-8x7B, LMSYS)", Table: t,
		Notes: []string{fmt.Sprintf("nonzero cells: fine %.0f%%, coarse %.0f%% — aggregation blurs the pattern",
			100*fineNZ/denom, 100*coarseNZ/denom)}}, nil
}

// motivTraces simulates a small request population for analysis-only
// experiments.
func motivTraces(c *Context, cfg moe.Config, ds workload.Dataset) [][]*moe.Iteration {
	ds = c.dataset(ds)
	reqs := c.clampLens(ds.Sample(workload.Options{
		Dim: cfg.SemDim, N: c.Scale.MotivPrompts, Seed: c.Seed + 1, FixedLengths: true,
	}))
	key := fmt.Sprintf("motiv/%s", ds.Name)
	traces := c.Traces(cfg, key, reqs)
	out := make([][]*moe.Iteration, 0, len(reqs))
	for _, q := range reqs {
		out = append(out, traces[q.ID])
	}
	return out
}

// runFig3b computes mean per-layer entropy for coarse vs fine granularity
// across the three models and two datasets.
func runFig3b(c *Context) (*Output, error) {
	t := metrics.NewTable("dataset", "model", "coarse_entropy", "fine_entropy", "uniform_bound")
	for _, ds := range paperDatasets() {
		for _, cfg := range paperModels() {
			traces := motivTraces(c, cfg, ds)
			var fine, coarse float64
			for _, iters := range traces {
				fine += moe.FineGrainedEntropy(iters)
				coarse += moe.CoarseGrainedEntropy(iters)
			}
			n := float64(len(traces))
			t.Row(ds.Name, cfg.Name, coarse/n, fine/n, math.Log(float64(cfg.RoutedExperts)))
		}
	}
	return &Output{ID: "fig3b", Title: "Mean entropy per layer: coarse vs fine", Table: t,
		Notes: []string{"paper shape: coarse-grained entropy significantly higher than fine-grained for every model/dataset"}}, nil
}

// runFig3c traces entropy growth as expert patterns aggregate across
// decode iterations.
func runFig3c(c *Context) (*Output, error) {
	samplePoints := []int{1, 2, 5, 10, 20, 30, 40, 50}
	t := metrics.NewTable(append([]string{"dataset", "model"}, intHeaders("iter", samplePoints)...)...)
	for _, ds := range paperDatasets() {
		for _, cfg := range paperModels() {
			traces := motivTraces(c, cfg, ds)
			var curves [][]float64
			for _, iters := range traces {
				if len(iters) > 1 {
					curves = append(curves, moe.EntropyByIteration(iters[1:]))
				}
			}
			row := []any{ds.Name, cfg.Name}
			for _, p := range samplePoints {
				var sum float64
				var n int
				for _, curve := range curves {
					idx := p - 1
					if idx >= len(curve) {
						idx = len(curve) - 1
					}
					if idx >= 0 {
						sum += curve[idx]
						n++
					}
				}
				if n > 0 {
					row = append(row, sum/float64(n))
				} else {
					row = append(row, "-")
				}
			}
			t.Row(row...)
		}
	}
	// Plot the LMSYS curves (the paper's left panel).
	plot := metrics.NewPlot("Fig 3c — entropy vs aggregated iterations (LMSYS)", "iterations", "entropy (nats)")
	for _, cfg := range paperModels() {
		traces := motivTraces(c, cfg, workload.LMSYSChat1M())
		series := metrics.Series{Name: cfg.Name}
		var curves [][]float64
		for _, iters := range traces {
			if len(iters) > 1 {
				curves = append(curves, moe.EntropyByIteration(iters[1:]))
			}
		}
		for _, p := range samplePoints {
			var sum float64
			var n int
			for _, curve := range curves {
				idx := p - 1
				if idx >= len(curve) {
					idx = len(curve) - 1
				}
				if idx >= 0 {
					sum += curve[idx]
					n++
				}
			}
			if n > 0 {
				series.X = append(series.X, float64(p))
				series.Y = append(series.Y, sum/float64(n))
			}
		}
		plot.Add(series)
	}
	return &Output{ID: "fig3c", Title: "Entropy vs aggregated iterations", Table: t,
		Plots: []string{plot.String()},
		Notes: []string{"paper shape: entropy rises with aggregated iterations, plateaus after ~10; Qwen > Phi > Mixtral plateau ordering"}}, nil
}

// runFig4 compares coarse-grained (EAM) and fine-grained (expert map
// search) prediction hit rates as the prefetch distance grows.
func runFig4(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	distances := []int{1, 2, 4, 6, 8, 12, 16, 20, 25, 30}
	t := metrics.NewTable(append([]string{"model", "design"}, intHeaders("d", distances)...)...)
	var plots []string
	for _, cfg := range paperModels() {
		_, testReqs := c.OfflineSplit(cfg, ds)
		testTraces := c.Traces(cfg, "test/"+ds.Name, testReqs)
		coll := c.EAMProto(cfg, ds)

		fineRow := []any{cfg.Name, "fine-grained"}
		coarseRow := []any{cfg.Name, "coarse-grained"}
		for _, d := range distances {
			if d >= cfg.Layers {
				fineRow = append(fineRow, "-")
				coarseRow = append(coarseRow, "-")
				continue
			}
			searcher := core.NewSearcher(c.StoreProto(cfg, ds, d), 128)
			var fineSum, coarseSum float64
			var n int
			for _, q := range testReqs[:minInt(len(testReqs), 8)] {
				iters := testTraces[q.ID]
				history := baselines.NewEAM(cfg)
				for _, it := range iters {
					if it.Index%3 == 1 {
						pred := core.PredictIteration(searcher, it, core.PredictOptions{
							D: d, TopK: cfg.TopK, Dynamic: true, UseSemantic: true, UseTrajectory: true,
						})
						fineSum += pred.HitRate(it)
						coarse := baselines.CoarsePredict(cfg, coll, history, cfg.TopK)
						coarseSum += moe.IterationHitRate(it, coarse)
						n++
					}
					history.ObserveIteration(cfg, it)
				}
			}
			fineRow = append(fineRow, fineSum/float64(n))
			coarseRow = append(coarseRow, coarseSum/float64(n))
		}
		t.Row(fineRow...)
		t.Row(coarseRow...)
		fineSeries := metrics.Series{Name: cfg.Name + " fine"}
		coarseSeries := metrics.Series{Name: cfg.Name + " coarse"}
		for j, d := range distances {
			if fv, ok := rowCell(fineRow, j+2); ok {
				fineSeries.X = append(fineSeries.X, float64(d))
				fineSeries.Y = append(fineSeries.Y, fv)
			}
			if cv, ok := rowCell(coarseRow, j+2); ok {
				coarseSeries.X = append(coarseSeries.X, float64(d))
				coarseSeries.Y = append(coarseSeries.Y, cv)
			}
		}
		if cfg.Name == "Mixtral-8x7B" { // one panel keeps the chart readable
			plot := metrics.NewPlot("Fig 4 — hit rate vs prefetch distance (Mixtral, LMSYS)", "d (layers)", "hit rate")
			plot.Add(fineSeries)
			plot.Add(coarseSeries)
			plots = append(plots, plot.String())
		}
	}
	return &Output{ID: "fig4", Title: "Hit rate vs prefetch distance (LMSYS)", Table: t,
		Plots: plots,
		Notes: []string{"paper shape: fine-grained stays high across distances; coarse-grained sits well below it"}}, nil
}

// rowCell extracts a float from a mixed-type table row.
func rowCell(row []any, idx int) (float64, bool) {
	if idx >= len(row) {
		return 0, false
	}
	v, ok := row[idx].(float64)
	return v, ok
}

func intHeaders(prefix string, xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%s%d", prefix, x)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
