package experiments

import (
	"fmt"

	"finemoe/internal/core"
	"finemoe/internal/metrics"
	"finemoe/internal/par"
	"finemoe/internal/policy"
	"finemoe/internal/workload"
)

func init() {
	register("searchfig",
		"Indexed expert-map search: exact vs approximate nprobe sweep — recall, hit-rate loss, and modeled search latency",
		runSearchFig)
}

// searchProbes is the sweep: 0 is exact (probe-all, byte-identical to the
// brute force), the rest probe the nprobe most query-similar clusters of
// the store's ~√capacity centroids.
func searchProbes() []int { return []int{0, 8, 4, 2, 1} }

// runSearchFig quantifies the approximate-search policy knob
// (FineMoEOptions.SearchNProbe): for each nprobe it measures top-1 recall
// against the exact search over the warmed store, the end-to-end offline
// serving hit rate and TTFT with the policy running at that setting, and
// the modeled per-search latency (the quantity FineMoE charges its
// prefetch issue times with). The exact row doubles as the regression
// anchor: its recall is 1 by construction (parity-pinned), so the table
// reads as "what does each probed fraction of the store buy, and what
// does it cost in hit rate".
func runSearchFig(c *Context) (*Output, error) {
	cfg := paperModels()[0] // Mixtral-8x7B, the paper's lead model
	ds := c.dataset(workload.LMSYSChat1M())
	c.Model(cfg) // warm the memoized simulator before fanning out
	d := cfg.OptimalPrefetchDistance
	proto := c.StoreProto(cfg, ds, d)
	_, testReqs := c.OfflineSplit(cfg, ds)
	traces := c.Traces(cfg, "test/"+ds.Name, testReqs)

	// Recall queries: every test-request iteration's semantic embedding.
	// The exact-search reference is nprobe-independent — compute it once
	// here instead of once per sweep row.
	var queries [][]float64
	var exactWinners []*core.ExpertMap
	exact := core.NewSearcher(proto, 0)
	for _, q := range testReqs {
		for _, it := range traces[q.ID] {
			queries = append(queries, it.Semantic)
			if res, ok := exact.SemanticSearch(it.Semantic); ok {
				exactWinners = append(exactWinners, res.Map)
			} else {
				exactWinners = append(exactWinners, nil)
			}
		}
	}

	probes := searchProbes()
	type outcome struct {
		recall, semMS, trajMS, frac float64
		hitRate, ttftS              float64
	}
	outcomes := make([]outcome, len(probes))
	par.ForEach(c.Workers, len(probes), func(i int) {
		nprobe := probes[i]
		approx := core.NewSearcher(proto, 0)
		approx.SetNProbe(nprobe)
		var o outcome
		if nprobe <= 0 {
			// Exact mode IS the reference — recall 1 by the parity
			// contract, no need to re-run the most expensive sweep row.
			o.recall = 1
		} else if len(queries) > 0 {
			hits := 0
			for qi, sem := range queries {
				if a, ok := approx.SemanticSearch(sem); ok && a.Map == exactWinners[qi] {
					hits++
				}
			}
			o.recall = float64(hits) / float64(len(queries))
		}
		o.semMS = approx.SemanticLatencyMS()
		o.trajMS = approx.TrajectoryLatencyMS()
		o.frac = 1
		if clusters := core.IndexClusters(proto.Capacity()); nprobe > 0 && nprobe < clusters {
			o.frac = float64(nprobe) / float64(clusters)
		}

		// End-to-end offline serving at this probe setting (the fig10
		// FineMoE protocol: warm store clone, lean cache).
		sys := system{
			name: fmt.Sprintf("FineMoE(nprobe=%d)", nprobe),
			build: func() policy.Policy {
				return core.NewFineMoE(proto.Clone(), core.Options{
					PrefetchDistance: d,
					SearchNProbe:     nprobe,
				})
			},
			cacheFrac: leanCacheFrac,
		}
		res := runOffline(c, cfg, ds, sys, defaultBatchSize)
		o.hitRate = res.HitRate
		o.ttftS = res.MeanTTFT
		outcomes[i] = o
	})

	t := metrics.NewTable("nprobe", "probe_frac", "recall@1", "hit_rate", "ttft_s", "sem_search_ms", "traj_step_ms")
	for i, nprobe := range probes {
		o := outcomes[i]
		label := "exact"
		if nprobe > 0 {
			label = fmt.Sprintf("%d", nprobe)
		}
		t.Row(label, fmt.Sprintf("%.3f", o.frac),
			fmt.Sprintf("%.3f", o.recall),
			fmt.Sprintf("%.3f", o.hitRate),
			metrics.Seconds(o.ttftS),
			fmt.Sprintf("%.4f", o.semMS),
			fmt.Sprintf("%.4f", o.trajMS))
	}
	return &Output{ID: "searchfig",
		Title: "Approximate expert-map search: recall and hit-rate loss vs modeled search speedup",
		Table: t,
		Notes: []string{
			"exact row: probe-all, byte-identical to the seed brute force (recall 1 by construction)",
			"expected shape: sem_search_ms falls with nprobe while recall@1 and hit_rate degrade gracefully",
			"hit-rate loss vs exact is the price of the latency win — the paper's negligible-overhead claim (§6.8) bounds how much latency there is to win back",
		}}, nil
}
