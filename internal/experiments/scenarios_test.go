package experiments

import "testing"

// TestScenarioFigAcceptance pins the scenario gauntlet's headline: under
// the MMPP bursty workload, the autoscaled semantic-affinity fleet holds
// p99 TTFT below the fixed round-robin fleet of the same starting size,
// and the bursty shapes actually present overdispersed traffic.
func TestScenarioFigAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario gauntlet is not short")
	}
	out, err := Run(smallCtx(), "scenariofig")
	if err != nil {
		t.Fatal(err)
	}
	h := out.Table.Header()
	rows := out.Table.Rows()
	iScen, iFleet := col(t, h, "scenario"), col(t, h, "fleet")
	iP99, iDisp := col(t, h, "p99_ttft_s"), col(t, h, "dispersion")
	iServed := col(t, h, "served")

	type key struct{ scen, fleet string }
	p99 := map[key]float64{}
	disp := map[string]float64{}
	for _, r := range rows {
		p99[key{r[iScen], r[iFleet]}] = cell(t, r[iP99])
		disp[r[iScen]] = cell(t, r[iDisp])
		if cell(t, r[iServed]) == 0 {
			t.Errorf("scenario %s/%s served nothing", r[iScen], r[iFleet])
		}
	}
	const fixed, auto = "fixed-2/round-robin", "auto[1..4]/semantic-affinity"

	// Headline: bursty traffic is where elasticity + affinity pay.
	fp, ok := p99[key{"mmpp", fixed}]
	if !ok {
		t.Fatal("mmpp fixed round-robin row missing")
	}
	ap, ok := p99[key{"mmpp", auto}]
	if !ok {
		t.Fatal("mmpp autoscaled semantic-affinity row missing")
	}
	if ap >= fp {
		t.Errorf("mmpp: autoscaled semantic-affinity p99 TTFT %.3fs not below fixed round-robin's %.3fs",
			ap, fp)
	}

	// The bursty shape must actually be bursty relative to Poisson.
	if disp["mmpp"] <= 1 {
		t.Errorf("mmpp dispersion %.2f, want > 1", disp["mmpp"])
	}
	if disp["mmpp"] <= disp["poisson"] {
		t.Errorf("mmpp dispersion %.2f not above poisson's %.2f",
			disp["mmpp"], disp["poisson"])
	}

	// Every scenario of the gauntlet appears on both fleets.
	for _, scen := range []string{"poisson", "mmpp", "diurnal", "flash-crowd", "sessions", "two-tenant"} {
		for _, fleet := range []string{fixed, auto} {
			if _, ok := p99[key{scen, fleet}]; !ok {
				t.Errorf("gauntlet cell %s/%s missing", scen, fleet)
			}
		}
	}
}

// TestFigDeterminism is the golden regression contract for every
// cluster-pipeline experiment: two runs with the same seed must produce
// identical serialized outputs, scale events and follow-up injection
// included. scenariofig joins the same contract clusterfig and
// autoscalefig already honor.
func TestFigDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("run-twice golden sweep is not short")
	}
	for _, id := range []string{"scenariofig", "clusterfig", "autoscalefig"} {
		t.Run(id, func(t *testing.T) {
			a, err := Run(smallCtx(), id)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(smallCtx(), id)
			if err != nil {
				t.Fatal(err)
			}
			golden, again := a.Table.CSV(), b.Table.CSV()
			if golden != again {
				t.Fatalf("%s not deterministic:\n%s\nvs\n%s", id, golden, again)
			}
		})
	}
}
