package experiments

import (
	"fmt"
	"sort"

	"finemoe/internal/memsim"
	"finemoe/internal/metrics"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/workload"
)

func init() {
	register("fig10", "Fig 10: offline serving TTFT/TPOT/hit rate, 5 systems", runFig10)
	register("fig11", "Fig 11: online serving request-latency CDF", runFig11)
	register("fig12", "Fig 12: TPOT under varying expert cache limits", runFig12)
	register("fig13", "Fig 13: performance on a high-end GPU (A100)", runFig13)
	register("fig16b", "Fig 16b: performance vs inference batch size", runFig16b)
	register("fig17", "Fig 17: per-iteration latency breakdown of FineMoE", runFig17)
}

// runFig10 reproduces the headline offline comparison: TTFT, TPOT and
// expert hit rate for the five systems across three models and both
// datasets.
func runFig10(c *Context) (*Output, error) {
	t := metrics.NewTable("dataset", "model", "system", "ttft_s", "tpot_s", "hit_rate")
	for _, ds := range paperDatasets() {
		for _, cfg := range paperModels() {
			for _, sys := range paperSystems(c, cfg, ds, true) {
				res := runOffline(c, cfg, ds, sys, defaultBatchSize)
				t.Row(ds.Name, cfg.Name, sys.name,
					metrics.Seconds(res.MeanTTFT), metrics.Seconds(res.MeanTPOT),
					fmt.Sprintf("%.3f", res.HitRate))
			}
		}
	}
	return &Output{ID: "fig10", Title: "Offline serving performance", Table: t,
		Notes: []string{
			"paper shape: latency FineMoE < MoE-Infinity < ProMoE < Mixtral-Offload < DeepSpeed",
			"paper shape: hit rate DeepSpeed(1.0) > FineMoE > Mixtral-Offload > ProMoE > MoE-Infinity",
		}}, nil
}

// runFig11 reproduces the online serving experiment: empty stores, trace
// arrivals, end-to-end request latency CDF per system and model.
func runFig11(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	t := metrics.NewTable("model", "system", "p25_s", "p50_s", "p75_s", "p90_s", "p99_s", "mean_s")
	var plots []string
	for _, cfg := range paperModels() {
		plot := metrics.NewPlot(fmt.Sprintf("Fig 11 — request latency CDF, %s", cfg.Name), "latency (s)", "fraction")
		for _, sys := range paperSystems(c, cfg, ds, false) {
			res := runOnline(c, cfg, ds, sys)
			lat := make([]float64, 0, len(res.Requests))
			for _, r := range res.Requests {
				lat = append(lat, r.E2Ems/1000)
			}
			sort.Float64s(lat)
			t.Row(cfg.Name, sys.name,
				metrics.Seconds(1000*metrics.Percentile(lat, 0.25)),
				metrics.Seconds(1000*metrics.Percentile(lat, 0.50)),
				metrics.Seconds(1000*metrics.Percentile(lat, 0.75)),
				metrics.Seconds(1000*metrics.Percentile(lat, 0.90)),
				metrics.Seconds(1000*metrics.Percentile(lat, 0.99)),
				metrics.Seconds(1000*metrics.Summarize(lat).Mean))
			plot.Add(metrics.CDFSeries(sys.name, lat))
		}
		plots = append(plots, plot.String())
	}
	return &Output{ID: "fig11", Title: "Online serving request latency CDF (Azure-style trace)", Table: t,
		Plots: plots,
		Notes: []string{"paper shape: FineMoE's CDF sits left of every baseline for all three models"}}, nil
}

// fig12Budgets returns the paper's cache-limit sweep in bytes.
func fig12Budgets() []int64 {
	gb := int64(1) << 30
	return []int64{6 * gb, 12 * gb, 24 * gb, 48 * gb, 96 * gb}
}

// runFig12 sweeps the expert-cache budget, giving every system the same
// limit (unlike Fig 10's natural operating points).
func runFig12(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	budgets := fig12Budgets()
	headers := []string{"model", "system"}
	for _, b := range budgets {
		headers = append(headers, fmt.Sprintf("tpot_s@%dGB", b>>30))
	}
	t := metrics.NewTable(headers...)
	var plots []string
	for _, cfg := range paperModels() {
		plot := metrics.NewPlot(fmt.Sprintf("Fig 12 — TPOT vs expert cache limit, %s", cfg.Name), "cache (GB)", "tpot (s)")
		for _, sys := range paperSystems(c, cfg, ds, true) {
			row := []any{cfg.Name, sys.name}
			series := metrics.Series{Name: sys.name}
			for _, b := range budgets {
				s := sys
				s.cacheBytes = b
				if b > cfg.TotalExpertBytes() {
					s.cacheBytes = cfg.TotalExpertBytes()
				}
				res := runOffline(c, cfg, ds, s, defaultBatchSize)
				row = append(row, metrics.Seconds(res.MeanTPOT))
				series.X = append(series.X, float64(b>>30))
				series.Y = append(series.Y, res.MeanTPOT/1000)
			}
			t.Row(row...)
			plot.Add(series)
		}
		plots = append(plots, plot.String())
	}
	return &Output{ID: "fig12", Title: "TPOT under varying expert cache limits", Table: t,
		Plots: plots,
		Notes: []string{
			"paper shape: FineMoE lowest TPOT at every budget; gaps narrow as the cache grows",
			"paper: at 6GB FineMoE cuts TPOT by 36/25/16/29% vs DeepSpeed/Mixtral-Offload/ProMoE/MoE-Infinity",
		}}, nil
}

// runFig13 repeats the offline comparison on a single A100-80GB (no expert
// parallelism), where faster inference shrinks — but does not close — the
// gaps.
func runFig13(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	a100 := NewContext(c.Scale, c.Seed)
	a100.GPU = memsim.A100()
	a100.NumGPUs = 1
	t := metrics.NewTable("model", "system", "ttft_s", "tpot_s", "hit_rate")
	for _, cfg := range paperModels() {
		for _, sys := range paperSystems(a100, cfg, ds, true) {
			res := runOffline(a100, cfg, ds, sys, defaultBatchSize)
			t.Row(cfg.Name, sys.name, metrics.Seconds(res.MeanTTFT),
				metrics.Seconds(res.MeanTPOT), fmt.Sprintf("%.3f", res.HitRate))
		}
	}
	return &Output{ID: "fig13", Title: "High-end GPU testbed (1x A100-80GB)", Table: t,
		Notes: []string{"paper shape: FineMoE still best everywhere; smaller gains than on 6x3090; hit rates barely change"}}, nil
}

// runFig16b sweeps the inference batch size on Mixtral + LMSYS for the four
// prefetching systems.
func runFig16b(c *Context) (*Output, error) {
	cfg := moe.Mixtral8x7B()
	ds := workload.LMSYSChat1M()
	batches := []int{1, 2, 4, 8}
	headers := []string{"system", "metric"}
	for _, b := range batches {
		headers = append(headers, fmt.Sprintf("B=%d", b))
	}
	t := metrics.NewTable(headers...)
	for _, sys := range paperSystems(c, cfg, ds, true) {
		if sys.name == "DeepSpeed" {
			continue // Fig 16b compares the four prefetching systems
		}
		ttftRow := []any{sys.name, "ttft_s"}
		tpotRow := []any{sys.name, "tpot_s"}
		for _, b := range batches {
			res := runOffline(c, cfg, ds, sys, b)
			ttftRow = append(ttftRow, metrics.Seconds(res.MeanTTFT))
			tpotRow = append(tpotRow, metrics.Seconds(res.MeanTPOT))
		}
		t.Row(ttftRow...)
		t.Row(tpotRow...)
	}
	return &Output{ID: "fig16b", Title: "Performance vs inference batch size (Mixtral, LMSYS)", Table: t,
		Notes: []string{"paper shape: FineMoE achieves the lowest TTFT and TPOT in most batch sizes"}}, nil
}

// runFig17 reports FineMoE's per-iteration latency breakdown per model,
// separating synchronous (inference, on-demand load) from asynchronous
// (context collection, map match, prefetch, map update) components.
func runFig17(c *Context) (*Output, error) {
	ds := workload.LMSYSChat1M()
	comps := []string{
		policy.CompCollect, policy.CompInfer, policy.CompMapMatch,
		policy.CompLoad, policy.CompUpdate, policy.CompPredict,
	}
	async := map[string]bool{
		policy.CompCollect:  true,
		policy.CompMapMatch: true,
		policy.CompUpdate:   true,
	}
	headers := append([]string{"model", "total_iter_ms"}, comps...)
	t := metrics.NewTable(headers...)
	for _, cfg := range paperModels() {
		sys := paperSystems(c, cfg, ds, true)[0] // FineMoE
		res := runOffline(c, cfg, ds, sys, defaultBatchSize)
		var iterMS float64
		row := []any{cfg.Name}
		for _, comp := range comps {
			if !async[comp] {
				iterMS += res.Breakdown[comp]
			}
		}
		row = append(row, iterMS)
		for _, comp := range comps {
			tag := ""
			if async[comp] {
				tag = " (async)"
			}
			row = append(row, fmt.Sprintf("%.2f%s", res.Breakdown[comp], tag))
		}
		t.Row(row...)
	}
	return &Output{ID: "fig17", Title: "FineMoE per-iteration latency breakdown", Table: t,
		Notes: []string{
			"asynchronous components (collect/map match/map update) do not contribute to end-to-end iteration latency (§6.8)",
			"paper: synchronous non-inference overhead stays below 50 ms per iteration",
		}}, nil
}
