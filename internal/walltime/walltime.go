// Package walltime is the single sanctioned wall-clock entry point for
// harness code. Simulator packages must take time from the event-loop
// clock (serve/cluster virtual milliseconds) — the noclock analyzer bans
// time.Now/time.Since everywhere except here and the live HTTP server —
// but benchmark and CLI harnesses legitimately measure how long a run
// took on the machine. Routing those reads through this package keeps the
// allowlist one package wide instead of exempting every cmd/ directory:
// a stray time.Now() in a new command is still a lint error, and the
// reviewer sees an explicit walltime.Start() when timing is intended.
package walltime

import (
	"runtime"
	"sync/atomic"
	"time"
)

// A Stopwatch measures elapsed wall-clock time for harness reporting. The
// zero value is not meaningful; obtain one from Start.
type Stopwatch struct {
	start time.Time
}

// Start begins timing.
func Start() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall-clock time since Start.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}

// ElapsedRounded returns the elapsed time rounded to unit, for
// human-facing progress lines.
func (s Stopwatch) ElapsedRounded(unit time.Duration) time.Duration {
	return s.Elapsed().Round(unit)
}

// A HeapWatch samples the live heap in the background and records the
// peak HeapAlloc observed. Benchmark harnesses use it to report the
// steady-state memory ceiling of a run — end-of-run HeapAlloc alone
// would miss any transient peak the GC already collected. Sampling uses
// wall time, which is why the watcher lives in this package.
type HeapWatch struct {
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

// WatchHeap starts sampling HeapAlloc every interval until Stop.
func WatchHeap(interval time.Duration) *HeapWatch {
	w := &HeapWatch{stop: make(chan struct{}), done: make(chan struct{})}
	w.sample()
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.sample()
			}
		}
	}()
	return w
}

func (w *HeapWatch) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		cur := w.peak.Load()
		if ms.HeapAlloc <= cur || w.peak.CompareAndSwap(cur, ms.HeapAlloc) {
			return
		}
	}
}

// Stop ends sampling and returns the peak HeapAlloc seen, including a
// final synchronous sample.
func (w *HeapWatch) Stop() uint64 {
	close(w.stop)
	<-w.done
	w.sample()
	return w.peak.Load()
}
