// Package walltime is the single sanctioned wall-clock entry point for
// harness code. Simulator packages must take time from the event-loop
// clock (serve/cluster virtual milliseconds) — the noclock analyzer bans
// time.Now/time.Since everywhere except here and the live HTTP server —
// but benchmark and CLI harnesses legitimately measure how long a run
// took on the machine. Routing those reads through this package keeps the
// allowlist one package wide instead of exempting every cmd/ directory:
// a stray time.Now() in a new command is still a lint error, and the
// reviewer sees an explicit walltime.Start() when timing is intended.
package walltime

import "time"

// A Stopwatch measures elapsed wall-clock time for harness reporting. The
// zero value is not meaningful; obtain one from Start.
type Stopwatch struct {
	start time.Time
}

// Start begins timing.
func Start() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall-clock time since Start.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}

// ElapsedRounded returns the elapsed time rounded to unit, for
// human-facing progress lines.
func (s Stopwatch) ElapsedRounded(unit time.Duration) time.Duration {
	return s.Elapsed().Round(unit)
}
