package memsim

import (
	"math"
	"testing"

	"finemoe/internal/moe"
)

func TestHierarchyValidate(t *testing.T) {
	cases := []struct {
		name string
		h    Hierarchy
		ok   bool
	}{
		{"two-tier", TwoTier(), true},
		{"three-tier", ThreeTier(1 << 30), true},
		{"bounded bottom", Hierarchy{Host: []TierSpec{{Name: "DRAM", CapacityBytes: 1}}}, false},
		{"unbounded middle", Hierarchy{Host: []TierSpec{
			{Name: "DRAM"},
			{Name: "NVMe", GBps: 1},
		}}, false},
		{"missing bandwidth", Hierarchy{Host: []TierSpec{
			{Name: "DRAM", CapacityBytes: 1},
			{Name: "NVMe"},
		}}, false},
		{"four-tier", Hierarchy{Host: []TierSpec{
			{Name: "DRAM", CapacityBytes: 1 << 30},
			{Name: "CXL", CapacityBytes: 4 << 30, GBps: 20, LatencyMS: 0.02},
			{Name: "NVMe", GBps: 6.8, LatencyMS: 0.1},
		}}, true},
	}
	for _, tc := range cases {
		err := tc.h.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	if err := (Hierarchy{}).Validate(); err == nil {
		t.Error("empty hierarchy validated without normalization")
	}
}

func TestDegenerateClusterHasNoStaging(t *testing.T) {
	cfg := moe.Tiny()
	c := NewCluster(RTX3090(), 2, cfg)
	if d := c.Hierarchy().Depth(); d != 1 {
		t.Fatalf("degenerate hierarchy depth %d, want 1", d)
	}
	if len(c.StagingStats()) != 0 {
		t.Fatal("degenerate cluster has staging links")
	}
	if c.StageTracked(moe.ExpertRef{}) {
		t.Fatal("degenerate cluster tracks staging transfers")
	}
	if got := c.AdvanceStagingTo(1e9); got != nil {
		t.Fatalf("degenerate staging drain returned %v", got)
	}
}

// TestStagingLinkTiming verifies a staging copy pays the tier's fixed
// latency plus bytes/bandwidth, and that consecutive on-demand staging
// loads serialize on the single shared link.
func TestStagingLinkTiming(t *testing.T) {
	cfg := moe.Tiny()
	h := ThreeTier(cfg.ExpertBytes() * 4)
	c := NewTieredCluster(RTX3090(), 2, cfg, h)

	dur := DefaultNVMeLatencyMS + float64(cfg.ExpertBytes())/(DefaultNVMeGBps*1e6)
	a, b := moe.ExpertRef{Layer: 0, Expert: 0}, moe.ExpertRef{Layer: 0, Expert: 1}

	endA := c.StageOnDemand(0, a, 0)
	if math.Abs(endA-dur) > 1e-9 {
		t.Fatalf("staging end %v, want %v", endA, dur)
	}
	// The second load shares the one host-level link: it serializes
	// behind the first even though the experts belong to different GPUs.
	endB := c.StageOnDemand(0, b, 0)
	if math.Abs(endB-2*dur) > 1e-9 {
		t.Fatalf("serialized staging end %v, want %v", endB, 2*dur)
	}
	done := c.AdvanceStagingTo(endB)
	if len(done) != 2 {
		t.Fatalf("drained %d staging transfers, want 2", len(done))
	}
	for _, st := range done {
		if st.Level != 0 {
			t.Fatalf("staging transfer landed at level %d, want 0", st.Level)
		}
	}
	st := c.StagingStats()
	if len(st) != 1 || st[0].OnDemands != 2 {
		t.Fatalf("staging stats %+v, want one link with 2 on-demands", st)
	}
}

// TestStagePrefetchDedup verifies duplicate staging prefetches for a
// tracked expert are refused, and StageTracked observes the queue.
func TestStagePrefetchDedup(t *testing.T) {
	cfg := moe.Tiny()
	c := NewTieredCluster(RTX3090(), 1, cfg, ThreeTier(cfg.ExpertBytes()*4))
	ref := moe.ExpertRef{Layer: 1, Expert: 2}
	if !c.StagePrefetch(0, ref, 1.0, 0) {
		t.Fatal("first staging prefetch refused")
	}
	if !c.StageTracked(ref) {
		t.Fatal("queued staging transfer not tracked")
	}
	if c.StagePrefetch(0, ref, 2.0, 0) {
		t.Fatal("duplicate staging prefetch accepted")
	}
	if c.StagingQueueLen() != 1 {
		t.Fatalf("staging queue %d, want 1", c.StagingQueueLen())
	}
}
