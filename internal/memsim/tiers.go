// Tiered host-memory hierarchy: the ordered tier list below the GPU
// expert cache, and the staging transfers that route an expert through
// intermediate tiers (NVMe -> DRAM -> HBM) on distinct contended links.
//
// The seed modeled exactly two tiers — a GPU expert cache in front of an
// infinite, always-resident host memory — which cannot express the
// latency-memory trade-off the paper is named for: the interesting regime
// is when DRAM itself is bounded and experts spill to a slower third
// tier. A Hierarchy makes the host side an ordered list of TierSpecs,
// each with capacity, bandwidth, and fixed per-copy latency; the
// degenerate single unbounded-DRAM entry reproduces the seed behavior
// byte-identically (no staging links exist, every expert is host-resident
// at t=0, and all transfer arithmetic is unchanged).
package memsim

import (
	"fmt"

	"finemoe/internal/moe"
)

// TierSpec describes one host-side memory tier: its capacity and the
// link that copies experts out of it into the tier above.
type TierSpec struct {
	// Name identifies the tier in stats ("DRAM", "NVMe").
	Name string
	// CapacityBytes bounds the tier's expert residency (<= 0 =
	// unbounded). An unbounded tier is a backing store: it permanently
	// holds every expert and terminates the hierarchy.
	CapacityBytes int64
	// GBps is the bandwidth of the staging link that copies experts out
	// of this tier into the tier above; LatencyMS is that link's fixed
	// per-copy latency (driver dispatch, block-layer submission). Both
	// are ignored on Host[0] (DRAM), whose up-links are the per-GPU PCIe
	// channels described by the GPUSpec.
	GBps      float64
	LatencyMS float64
}

// Unbounded reports whether the tier has no capacity limit.
func (t TierSpec) Unbounded() bool { return t.CapacityBytes <= 0 }

// Hierarchy is the ordered host-side tier list below the GPU expert
// cache. Host[0] is CPU DRAM — the tier the per-GPU PCIe links upload
// from — and deeper entries are progressively slower tiers, each feeding
// the one above over a single host-level staging link shared by every
// GPU. The zero value normalizes to the degenerate two-tier
// configuration (one unbounded DRAM tier).
type Hierarchy struct {
	Host []TierSpec
}

// TwoTier returns the degenerate hierarchy: unbounded DRAM, no deeper
// tiers. It reproduces the seed's memory model byte-identically.
func TwoTier() Hierarchy {
	return Hierarchy{Host: []TierSpec{{Name: "DRAM"}}}
}

// Default NVMe staging-link parameters: a PCIe 4.0 x4 data-center NVMe
// drive sustains ~6.8 GB/s sequential reads with ~0.1 ms of fixed
// per-command overhead through the block layer — the third tier MoEless
// -style serverless MoE serving spills experts to.
const (
	DefaultNVMeGBps      = 6.8
	DefaultNVMeLatencyMS = 0.1
)

// ThreeTier returns the paper-style three-tier hierarchy: DRAM bounded
// at dramBytes, backed by an unbounded NVMe tier behind a shared staging
// link with the default drive parameters. dramBytes <= 0 follows the
// repo-wide zero-means-unbounded convention and degrades to TwoTier()
// (an unbounded DRAM never reaches the tier below it).
func ThreeTier(dramBytes int64) Hierarchy {
	if dramBytes <= 0 {
		return TwoTier()
	}
	return Hierarchy{Host: []TierSpec{
		{Name: "DRAM", CapacityBytes: dramBytes},
		{Name: "NVMe", GBps: DefaultNVMeGBps, LatencyMS: DefaultNVMeLatencyMS},
	}}
}

// withDefaults normalizes the zero value to the degenerate hierarchy.
func (h Hierarchy) withDefaults() Hierarchy {
	if len(h.Host) == 0 {
		return TwoTier()
	}
	return h
}

// Validate checks the structural invariants: the bottom tier must be an
// unbounded backing store (every expert always has a home), bounded
// tiers may not follow an unbounded one (it would never be reached), and
// every tier below DRAM needs a staging link with positive bandwidth.
func (h Hierarchy) Validate() error {
	if len(h.Host) == 0 {
		return fmt.Errorf("hierarchy has no host tiers")
	}
	for i, t := range h.Host {
		last := i == len(h.Host)-1
		if last && !t.Unbounded() {
			return fmt.Errorf("bottom tier %q must be unbounded (it is the backing store)", t.Name)
		}
		if !last && t.Unbounded() {
			return fmt.Errorf("unbounded tier %q must terminate the hierarchy", t.Name)
		}
		if i > 0 && t.GBps <= 0 {
			return fmt.Errorf("tier %q needs a staging-link bandwidth", t.Name)
		}
	}
	return nil
}

// Depth returns the number of host tiers.
func (h Hierarchy) Depth() int { return len(h.Host) }

// StageTransfer is one completed staging copy: Level is the host tier
// the expert landed in (0 = DRAM).
type StageTransfer struct {
	Transfer
	Level int
}

// StagePrefetch enqueues an asynchronous staging copy from host tier
// level+1 into host tier level on the shared staging link. Duplicate
// requests for a tracked expert are ignored (returns false). Panics if
// the hierarchy has no tier below level.
func (c *Cluster) StagePrefetch(level int, ref moe.ExpertRef, priority, issueTime float64) bool {
	return c.staging[level].Prefetch(ref, priority, issueTime)
}

// StageOnDemand performs a blocking staging copy into host tier level at
// time now and returns the time the expert lands there. Like Link
// on-demand loads, it pauses pending staging prefetches on that link and
// coalesces with a queued or in-flight copy of the same expert.
func (c *Cluster) StageOnDemand(level int, ref moe.ExpertRef, now float64) float64 {
	return c.staging[level].OnDemand(ref, now)
}

// StageTracked reports whether any staging link has a queued or
// in-flight copy of ref.
func (c *Cluster) StageTracked(ref moe.ExpertRef) bool {
	for _, l := range c.staging {
		if l.Tracked(ref) {
			return true
		}
	}
	return false
}

// AdvanceStagingTo advances every staging link to now and returns the
// staging copies completed since the last drain, deepest tier first
// within equal levels, in completion order per link. The returned slice
// aliases an internal scratch buffer valid only until the next call.
func (c *Cluster) AdvanceStagingTo(now float64) []StageTransfer {
	c.stageScratch = c.stageScratch[:0]
	for j, l := range c.staging {
		for _, t := range l.AdvanceTo(now) {
			c.stageScratch = append(c.stageScratch, StageTransfer{Transfer: t, Level: j})
		}
	}
	return c.stageScratch
}

// StagingStats returns per-staging-link statistics: StagingStats()[j] is
// the link feeding host tier j from host tier j+1. Empty under the
// degenerate hierarchy.
func (c *Cluster) StagingStats() []LinkStats {
	out := make([]LinkStats, len(c.staging))
	for j, l := range c.staging {
		out[j] = l.Stats()
	}
	return out
}

// StagingQueueLen returns the total pending staging transfers.
func (c *Cluster) StagingQueueLen() int {
	n := 0
	for _, l := range c.staging {
		n += l.QueueLen()
	}
	return n
}
