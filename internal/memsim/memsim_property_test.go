package memsim

import (
	"sort"
	"testing"
	"testing/quick"

	"finemoe/internal/moe"
	"finemoe/internal/rng"
)

// TestLinkScheduleInvariants drives a link with random interleavings of
// prefetches, on-demand loads, and clock advances, then checks the physical
// invariants of a serial transfer channel.
func TestLinkScheduleInvariants(t *testing.T) {
	r := rng.New(99)
	f := func(seed uint64) bool {
		rr := r.Derive(seed)
		spec := testSpec()
		spec.TransferLatencyMS = 0.25
		l := NewLink(spec, 10_000_000)
		now := 0.0
		var completed []Transfer
		demanded := map[moe.ExpertRef]bool{}
		for op := 0; op < 120; op++ {
			switch rr.Intn(3) {
			case 0:
				ref := moe.ExpertRef{Layer: rr.Intn(4), Expert: rr.Intn(8)}
				l.Prefetch(ref, rr.Float64(), now+rr.Float64()*2)
			case 1:
				ref := moe.ExpertRef{Layer: rr.Intn(4), Expert: rr.Intn(8)}
				avail := l.OnDemand(ref, now)
				if avail < now {
					t.Logf("on-demand availability %v before now %v", avail, now)
					return false
				}
				now = avail
				demanded[ref] = true
			case 2:
				now += rr.Float64() * 3
				completed = append(completed, l.AdvanceTo(now)...)
			}
		}
		completed = append(completed, l.AdvanceTo(now+1000)...)

		// Transfer durations are uniform; none may be zero-length or
		// end before starting.
		dur := spec.TransferLatencyMS + spec.TransferMS(10_000_000)
		for _, tr := range completed {
			if tr.End-tr.Start < dur-1e-9 {
				t.Logf("short transfer: %+v", tr)
				return false
			}
			if tr.Start+1e-9 < tr.IssueTime {
				t.Logf("transfer started before issue: %+v", tr)
				return false
			}
		}
		// Prefetch-stream transfers must not overlap each other.
		var prefetchStream []Transfer
		for _, tr := range completed {
			if !tr.OnDemand {
				prefetchStream = append(prefetchStream, tr)
			}
		}
		sort.Slice(prefetchStream, func(a, b int) bool {
			return prefetchStream[a].Start < prefetchStream[b].Start
		})
		for i := 1; i < len(prefetchStream); i++ {
			if prefetchStream[i].Start+1e-9 < prefetchStream[i-1].End {
				t.Logf("overlapping prefetches: %+v then %+v", prefetchStream[i-1], prefetchStream[i])
				return false
			}
		}
		// At most one live transfer may remain per expert and nothing may
		// complete twice.
		seenEnd := map[moe.ExpertRef]float64{}
		for _, tr := range completed {
			if prev, ok := seenEnd[tr.Ref]; ok && tr.End == prev {
				t.Logf("duplicate completion: %+v", tr)
				return false
			}
			seenEnd[tr.Ref] = tr.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterAdvanceMonotone: repeated advances with non-decreasing clocks
// must never lose completions or produce out-of-order ends per link.
func TestClusterAdvanceMonotone(t *testing.T) {
	cfg := moe.Tiny()
	c := NewCluster(testSpec(), 2, cfg)
	r := rng.New(5)
	issued := 0
	for i := 0; i < 40; i++ {
		ref := moe.ExpertRef{Layer: r.Intn(cfg.Layers), Expert: r.Intn(cfg.RoutedExperts)}
		if c.Prefetch(ref, r.Float64(), float64(i)*0.1) {
			issued++
		}
	}
	var all []Transfer
	now := 0.0
	for now < 100 {
		now += r.Float64() * 5
		all = append(all, c.AdvanceTo(now)...)
	}
	if len(all) != issued {
		t.Fatalf("completions %d != issued %d", len(all), issued)
	}
}
