// Package memsim simulates the hardware substrate of the paper's testbeds:
// GPUs with HBM-bandwidth-bound compute, CPU memory behind per-GPU PCIe
// links, and expert-parallel placement of MoE experts across devices.
//
// All timing is virtual: the serving engine advances a millisecond clock and
// the cluster lazily schedules queued transfers up to that instant. This
// reproduces the latency structure that governs offloading systems —
// compute/transfer overlap for asynchronous prefetching, serialization for
// synchronous fetching, queueing on a contended link, and preemption by
// on-demand loads — without any real GPU.
package memsim

import (
	"fmt"
	"math"

	"finemoe/internal/moe"
)

// GPUSpec describes one GPU model's performance envelope.
type GPUSpec struct {
	// Name identifies the device ("RTX 3090", "A100-80GB").
	Name string
	// MemBytes is the device memory capacity.
	MemBytes int64
	// HBMGBps is device-memory bandwidth in GB/s; decode-phase compute is
	// modeled as weight-read time (memory-bound, §2.1).
	HBMGBps float64
	// FP16TFLOPS is peak half-precision throughput; prefill-phase compute
	// is FLOPs-bound (§2.1).
	FP16TFLOPS float64
	// PCIeGBps is host-to-device transfer bandwidth in GB/s — the paper's
	// testbed uses PCIe 4.0 at 32 GB/s (§6.1).
	PCIeGBps float64
	// PerLayerOverheadMS models the serving-framework overhead per
	// Transformer layer per iteration (kernel launches, Python dispatch
	// in the HuggingFace stack the paper builds on).
	PerLayerOverheadMS float64
	// TransferLatencyMS is the fixed per-copy overhead of one
	// host-to-device transfer (driver dispatch, pinned-buffer staging).
	// It dominates for small experts (Qwen) and penalizes designs that
	// issue many small synchronous copies.
	TransferLatencyMS float64
}

// RTX3090 returns the paper's six-GPU testbed device (§6.1).
func RTX3090() GPUSpec {
	return GPUSpec{
		Name:               "RTX 3090",
		MemBytes:           24 << 30,
		HBMGBps:            936,
		FP16TFLOPS:         71,
		PCIeGBps:           32,
		PerLayerOverheadMS: 8,
		TransferLatencyMS:  1.0,
	}
}

// A100 returns the high-end testbed of §6.5: 80 GB HBM2e at 2 TB/s.
func A100() GPUSpec {
	return GPUSpec{
		Name:               "A100-80GB",
		MemBytes:           80 << 30,
		HBMGBps:            2039,
		FP16TFLOPS:         312,
		PCIeGBps:           64,
		PerLayerOverheadMS: 2,
		TransferLatencyMS:  0.5,
	}
}

// TransferMS returns the PCIe transfer time for n bytes in milliseconds.
func (g GPUSpec) TransferMS(n int64) float64 {
	return float64(n) / (g.PCIeGBps * 1e6) // bytes / (GB/s * 1e6 B/ms)
}

// ReadMS returns the HBM weight-read time for n bytes in milliseconds.
func (g GPUSpec) ReadMS(n int64) float64 {
	return float64(n) / (g.HBMGBps * 1e6)
}

// FlopsMS returns the compute time for f half-precision FLOPs in
// milliseconds, assuming 40% of peak utilization (typical for prefill
// GEMMs in serving frameworks).
func (g GPUSpec) FlopsMS(f float64) float64 {
	return f / (g.FP16TFLOPS * 1e9 * 0.4)
}

// transferState tracks where an expert's transfer stands.
type transferState int

const (
	stateNone transferState = iota
	stateQueued
	stateInflight
)

// Transfer is one host-to-device expert copy.
type Transfer struct {
	Ref moe.ExpertRef
	// IssueTime is when the transfer may begin (for asynchronous
	// prefetches this includes the search latency that produced it).
	IssueTime float64
	// Priority orders queued prefetches (higher first); the paper's
	// prefetching priority is p/(l - l_now) (§4.5).
	Priority float64
	// Start and End are filled in once the link schedules the copy.
	Start, End float64
	// OnDemand marks a blocking miss load.
	OnDemand bool
}

// Link is one expert-copy channel between two adjacent memory tiers — a
// GPU's PCIe host link, or a shared staging link deeper in the hierarchy:
// a single-transfer-at-a-time channel with a priority queue of pending
// prefetches and support for on-demand preemption with prefetch pausing
// (§4.5).
type Link struct {
	gbps  float64 // nominal bandwidth in GB/s
	latMS float64 // fixed per-copy latency in ms
	bytes int64   // bytes per expert on this model
	scale float64 // bandwidth multiplier (brownouts; 1 = nominal)

	queue        []*Transfer // pending, unscheduled
	free         []*Transfer // recycled records; Prefetch reuses before allocating
	current      *Transfer   // scheduled with End > drained time
	freeAt       float64     // when the prefetch stream finishes scheduled work
	demandFreeAt float64     // when the on-demand stream becomes free
	pausedUntil  float64     // prefetch pause horizon from on-demand loads
	completed    []Transfer  // drained by AdvanceTo callers

	state map[moe.ExpertRef]transferState

	// stats
	prefetchCount, onDemandCount int
	busyMS                       float64
}

// NewLink builds a GPU host link (PCIe bandwidth and per-copy latency from
// the device spec) transferring expertBytes-sized units.
func NewLink(spec GPUSpec, expertBytes int64) *Link {
	return NewRawLink(spec.PCIeGBps, spec.TransferLatencyMS, expertBytes)
}

// NewRawLink builds a link from raw channel parameters: bandwidth in GB/s
// and fixed per-copy latency in ms. Staging links between host tiers
// (NVMe -> DRAM) are built this way.
func NewRawLink(gbps, latencyMS float64, expertBytes int64) *Link {
	return &Link{gbps: gbps, latMS: latencyMS, bytes: expertBytes, scale: 1, state: map[moe.ExpertRef]transferState{}}
}

func (l *Link) durMS() float64 { return l.latMS + float64(l.bytes)/(l.gbps*l.scale*1e6) }

// SetBandwidthScale applies a multiplicative factor to the link's
// bandwidth — the brownout knob. It affects transfers scheduled from the
// call on; transfers already scheduled keep their start/end times
// (iterations, like transfers, are atomic in virtual time). Scale 1
// restores nominal bandwidth and is exact: the scaled duration
// computation multiplies by 1, so an un-browned-out link is
// byte-identical to one that never had the knob.
func (l *Link) SetBandwidthScale(f float64) {
	if f <= 0 {
		panic("memsim: non-positive bandwidth scale")
	}
	l.scale = f
}

// BandwidthScale returns the current brownout factor (1 = nominal).
func (l *Link) BandwidthScale() float64 { return l.scale }

// Stall freezes the link until untilMS — an expert-load stall: queued
// prefetches pause and the on-demand stream becomes free no earlier than
// untilMS, so loads issued during the window wait it out. A no-op when
// the link is already paused/busy past untilMS.
func (l *Link) Stall(untilMS float64) {
	l.pausedUntil = math.Max(l.pausedUntil, untilMS)
	l.demandFreeAt = math.Max(l.demandFreeAt, untilMS)
}

// Tracked reports whether ref is queued or in flight.
func (l *Link) Tracked(ref moe.ExpertRef) bool { return l.state[ref] != stateNone }

// Prefetch enqueues an asynchronous expert copy. Duplicate requests for a
// tracked expert are ignored (returns false).
func (l *Link) Prefetch(ref moe.ExpertRef, priority, issueTime float64) bool {
	if l.state[ref] != stateNone {
		return false
	}
	t := l.newTransfer()
	*t = Transfer{Ref: ref, IssueTime: issueTime, Priority: priority}
	l.queue = append(l.queue, t)
	l.state[ref] = stateQueued
	l.prefetchCount++
	return true
}

// newTransfer pops the free list, allocating only while the list warms up
// or when every record is queued or in flight.
//
//finemoe:allocok grows the transfer free list; steady state recycles records returned by schedule and OnDemand
func (l *Link) newTransfer() *Transfer {
	if n := len(l.free); n > 0 {
		t := l.free[n-1]
		l.free = l.free[:n-1]
		return t
	}
	return &Transfer{}
}

// AdvanceTo processes the transfer schedule up to time now and returns the
// transfers completed since the last drain, in completion order. The
// returned slice aliases the link's completion buffer, valid only until
// the link's next scheduling activity (another AdvanceTo, OnDemand, or
// Prefetch); callers that retain completions must copy them out. Reusing
// the buffer keeps the drain cycle allocation-free in steady state — this
// runs once per simulated layer in the serving hot path.
func (l *Link) AdvanceTo(now float64) []Transfer {
	l.schedule(now)
	out := l.completed
	l.completed = l.completed[:0]
	return out
}

// schedule processes the transfer timeline up to now, accumulating
// completions in l.completed without draining them.
func (l *Link) schedule(now float64) {
	for {
		if l.current != nil {
			if l.current.End > now {
				break
			}
			l.finish(*l.current)
			l.free = append(l.free, l.current)
			l.current = nil
		}
		next := l.pickNext(now)
		if next == nil {
			break
		}
		start := math.Max(l.freeAt, math.Max(next.IssueTime, l.pausedUntil))
		next.Start = start
		next.End = start + l.durMS()
		l.freeAt = next.End
		l.busyMS += l.durMS()
		l.state[next.Ref] = stateInflight
		l.current = next
	}
}

// pickNext removes and returns the highest-priority queued transfer that
// could start by now, or nil.
func (l *Link) pickNext(now float64) *Transfer {
	best := -1
	for i, t := range l.queue {
		start := math.Max(l.freeAt, math.Max(t.IssueTime, l.pausedUntil))
		if start > now {
			continue
		}
		if best < 0 || t.Priority > l.queue[best].Priority {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	t := l.queue[best]
	l.queue = append(l.queue[:best], l.queue[best+1:]...)
	return t
}

func (l *Link) finish(t Transfer) {
	l.completed = append(l.completed, t)
	delete(l.state, t.Ref)
}

// OnDemand performs a blocking miss load at time now and returns the time
// the expert becomes available. On-demand loads run on a dedicated
// high-priority copy stream (as CUDA serving stacks do), so they do not
// queue behind an in-flight prefetch; per the paper's §4.5 they pause
// pending prefetches until the missed expert arrives. If the requested
// expert is itself in flight, the load waits for that transfer; if it is
// queued, the queued prefetch is promoted instead of copying twice.
// Consecutive on-demand loads on one link still serialize with each other
// (tracked by demandFreeAt).
func (l *Link) OnDemand(ref moe.ExpertRef, now float64) float64 {
	l.schedule(now)
	switch l.state[ref] {
	case stateInflight:
		// Wait for the in-flight prefetch of this very expert.
		end := l.current.End
		l.pausedUntil = math.Max(l.pausedUntil, end)
		l.schedule(end)
		return end
	case stateQueued:
		// Promote the queued prefetch to an immediate on-demand load.
		for i, t := range l.queue {
			if t.Ref == ref {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				l.free = append(l.free, t)
				break
			}
		}
		delete(l.state, ref)
	}
	start := math.Max(now, l.demandFreeAt)
	end := start + l.durMS()
	l.demandFreeAt = end
	// Pause prefetching until the on-demand load completes (§4.5).
	l.pausedUntil = math.Max(l.pausedUntil, end)
	l.busyMS += l.durMS()
	l.onDemandCount++
	l.completed = append(l.completed, Transfer{Ref: ref, IssueTime: now, Start: start, End: end, OnDemand: true})
	return end
}

// QueueLen returns the number of pending (unscheduled) transfers.
func (l *Link) QueueLen() int { return len(l.queue) }

// Stats summarizes link activity.
type LinkStats struct {
	Prefetches, OnDemands int
	BusyMS                float64
}

// Stats returns cumulative link statistics.
func (l *Link) Stats() LinkStats {
	return LinkStats{Prefetches: l.prefetchCount, OnDemands: l.onDemandCount, BusyMS: l.busyMS}
}

// Cluster is an expert-parallel group of identical GPUs over a tiered
// host-memory hierarchy. Experts are assigned to devices round-robin by
// flattened expert ID, matching the paper's §5 hash placement. Each GPU
// owns a PCIe host link (DRAM -> HBM); tiers below DRAM feed the tier
// above them over one host-level staging link each, shared by every GPU.
type Cluster struct {
	Spec  GPUSpec
	N     int
	cfg   moe.Config
	links []*Link

	hier    Hierarchy
	staging []*Link // staging[j] feeds host tier j from host tier j+1
	// stageScratch and drainScratch back the slices AdvanceStagingTo and
	// AdvanceTo return, reused across drains; each is valid only until the
	// next call of its method.
	stageScratch []StageTransfer
	drainScratch []Transfer
}

// NewCluster builds an N-GPU cluster for the given model over the
// degenerate two-tier hierarchy (unbounded DRAM, no staging links) — the
// seed's memory model.
func NewCluster(spec GPUSpec, n int, cfg moe.Config) *Cluster {
	return NewTieredCluster(spec, n, cfg, Hierarchy{})
}

// NewTieredCluster builds an N-GPU cluster over an explicit host-memory
// hierarchy. A zero-value hierarchy normalizes to the degenerate two-tier
// configuration.
func NewTieredCluster(spec GPUSpec, n int, cfg moe.Config, h Hierarchy) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("memsim: invalid GPU count %d", n))
	}
	h = h.withDefaults()
	if err := h.Validate(); err != nil {
		panic("memsim: " + err.Error())
	}
	c := &Cluster{Spec: spec, N: n, cfg: cfg, hier: h}
	for i := 0; i < n; i++ {
		c.links = append(c.links, NewLink(spec, cfg.ExpertBytes()))
	}
	for j := 1; j < len(h.Host); j++ {
		t := h.Host[j]
		c.staging = append(c.staging, NewRawLink(t.GBps, t.LatencyMS, cfg.ExpertBytes()))
	}
	return c
}

// Hierarchy returns the cluster's normalized host-memory hierarchy.
func (c *Cluster) Hierarchy() Hierarchy { return c.hier }

// GPUFor returns the device index owning an expert.
func (c *Cluster) GPUFor(ref moe.ExpertRef) int {
	return c.cfg.ExpertID(ref.Layer, ref.Expert) % c.N
}

// Link returns device i's host link.
func (c *Cluster) Link(i int) *Link { return c.links[i] }

// Prefetch enqueues an asynchronous copy on the owning device's link.
func (c *Cluster) Prefetch(ref moe.ExpertRef, priority, issueTime float64) bool {
	return c.links[c.GPUFor(ref)].Prefetch(ref, priority, issueTime)
}

// Tracked reports whether ref has a queued or in-flight transfer.
func (c *Cluster) Tracked(ref moe.ExpertRef) bool {
	return c.links[c.GPUFor(ref)].Tracked(ref)
}

// OnDemand performs a blocking load of ref, returning its availability time.
func (c *Cluster) OnDemand(ref moe.ExpertRef, now float64) float64 {
	return c.links[c.GPUFor(ref)].OnDemand(ref, now)
}

// AdvanceTo advances every link to now and returns all completed
// transfers. The returned slice aliases an internal scratch buffer valid
// only until the next AdvanceTo call.
func (c *Cluster) AdvanceTo(now float64) []Transfer {
	c.drainScratch = c.drainScratch[:0]
	for _, l := range c.links {
		c.drainScratch = append(c.drainScratch, l.AdvanceTo(now)...)
	}
	return c.drainScratch
}

// SyncLoad performs blocking loads of all refs, parallelized across device
// links (each expert loads on its owner), and returns the time all are
// available. Used by synchronous policies (DeepSpeed full-layer fetching,
// Mixtral-Offloading's blocking speculative prefetch).
func (c *Cluster) SyncLoad(refs []moe.ExpertRef, now float64) float64 {
	end := now
	for _, ref := range refs {
		if t := c.OnDemand(ref, now); t > end {
			end = t
		}
	}
	return end
}

// Stats aggregates link statistics across devices.
func (c *Cluster) Stats() LinkStats {
	var s LinkStats
	for _, l := range c.links {
		ls := l.Stats()
		s.Prefetches += ls.Prefetches
		s.OnDemands += ls.OnDemands
		s.BusyMS += ls.BusyMS
	}
	return s
}

// QueueLen returns the total pending transfers across links.
func (c *Cluster) QueueLen() int {
	n := 0
	for _, l := range c.links {
		n += l.QueueLen()
	}
	return n
}

// ScalePCIe applies a bandwidth scale to every per-GPU host link (PCIe
// brownout; 1 restores nominal).
func (c *Cluster) ScalePCIe(f float64) {
	for _, l := range c.links {
		l.SetBandwidthScale(f)
	}
}

// ScaleStaging applies a bandwidth scale to every staging link below
// DRAM (NVMe brownout); a no-op under the degenerate two-tier hierarchy,
// which has no staging links to degrade.
func (c *Cluster) ScaleStaging(f float64) {
	for _, l := range c.staging {
		l.SetBandwidthScale(f)
	}
}

// StallPCIe freezes every per-GPU host link until untilMS.
func (c *Cluster) StallPCIe(untilMS float64) {
	for _, l := range c.links {
		l.Stall(untilMS)
	}
}

// StallStaging freezes every staging link until untilMS.
func (c *Cluster) StallStaging(untilMS float64) {
	for _, l := range c.staging {
		l.Stall(untilMS)
	}
}
