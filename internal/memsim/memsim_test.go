package memsim

import (
	"math"
	"testing"

	"finemoe/internal/moe"
)

func testSpec() GPUSpec {
	// 10 GB/s link, 10 MB experts => 1 ms per transfer.
	return GPUSpec{Name: "test", MemBytes: 1 << 30, HBMGBps: 100, FP16TFLOPS: 10, PCIeGBps: 10, PerLayerOverheadMS: 1}
}

func newTestLink() *Link { return NewLink(testSpec(), 10_000_000) }

func ref(l, e int) moe.ExpertRef { return moe.ExpertRef{Layer: l, Expert: e} }

func TestTransferMS(t *testing.T) {
	g := testSpec()
	if got := g.TransferMS(10_000_000); math.Abs(got-1) > 1e-9 {
		t.Fatalf("TransferMS = %v, want 1", got)
	}
	if got := RTX3090().TransferMS(352_000_000); math.Abs(got-11) > 0.5 {
		t.Fatalf("Mixtral expert over PCIe4 = %.2f ms, want ~11", got)
	}
}

func TestPrefetchCompletes(t *testing.T) {
	l := newTestLink()
	if !l.Prefetch(ref(0, 0), 1, 0) {
		t.Fatal("prefetch rejected")
	}
	if !l.Tracked(ref(0, 0)) {
		t.Fatal("not tracked after enqueue")
	}
	done := l.AdvanceTo(0.5)
	if len(done) != 0 {
		t.Fatal("completed too early")
	}
	done = l.AdvanceTo(1.5)
	if len(done) != 1 || done[0].Ref != ref(0, 0) {
		t.Fatalf("completion missing: %+v", done)
	}
	if done[0].End != 1 {
		t.Fatalf("end time %v, want 1", done[0].End)
	}
	if l.Tracked(ref(0, 0)) {
		t.Fatal("still tracked after completion")
	}
}

func TestDuplicatePrefetchRejected(t *testing.T) {
	l := newTestLink()
	l.Prefetch(ref(0, 0), 1, 0)
	if l.Prefetch(ref(0, 0), 5, 0) {
		t.Fatal("duplicate prefetch accepted")
	}
}

func TestPriorityOrdering(t *testing.T) {
	l := newTestLink()
	l.Prefetch(ref(0, 0), 1, 0)
	l.Prefetch(ref(0, 1), 10, 0)
	l.Prefetch(ref(0, 2), 5, 0)
	done := l.AdvanceTo(10)
	if len(done) != 3 {
		t.Fatalf("completions %d", len(done))
	}
	// Highest priority first... but the first prefetch may already be
	// in flight when the others arrive at the same instant; at t=0 all
	// are queued, so strict priority order applies.
	if done[0].Ref != ref(0, 1) || done[1].Ref != ref(0, 2) || done[2].Ref != ref(0, 0) {
		t.Fatalf("priority order wrong: %+v", done)
	}
}

func TestTransfersSerializeOnLink(t *testing.T) {
	l := newTestLink()
	l.Prefetch(ref(0, 0), 1, 0)
	l.Prefetch(ref(0, 1), 1, 0)
	done := l.AdvanceTo(5)
	if done[0].End != 1 || done[1].Start != 1 || done[1].End != 2 {
		t.Fatalf("transfers did not serialize: %+v", done)
	}
}

func TestIssueTimeRespected(t *testing.T) {
	l := newTestLink()
	l.Prefetch(ref(0, 0), 1, 3) // async search finishes at t=3
	done := l.AdvanceTo(2)
	if len(done) != 0 {
		t.Fatal("transfer started before issue time")
	}
	done = l.AdvanceTo(10)
	if len(done) != 1 || done[0].Start != 3 || done[0].End != 4 {
		t.Fatalf("issue-time scheduling wrong: %+v", done)
	}
}

func TestOnDemandBasic(t *testing.T) {
	l := newTestLink()
	avail := l.OnDemand(ref(1, 0), 5)
	if avail != 6 {
		t.Fatalf("on-demand availability %v, want 6", avail)
	}
	s := l.Stats()
	if s.OnDemands != 1 {
		t.Fatalf("on-demand count %d", s.OnDemands)
	}
}

func TestOnDemandRunsOnDedicatedStream(t *testing.T) {
	// An on-demand load must not queue behind an unrelated in-flight
	// prefetch: it runs on the dedicated high-priority copy stream.
	l := newTestLink()
	l.Prefetch(ref(0, 0), 1, 0)
	l.AdvanceTo(0.5) // starts the prefetch: in flight until t=1
	avail := l.OnDemand(ref(9, 9), 0.5)
	if math.Abs(avail-1.5) > 1e-9 {
		t.Fatalf("on-demand availability %v, want 1.5 (dedicated stream)", avail)
	}
}

func TestOnDemandPromotesQueuedSameExpert(t *testing.T) {
	l := newTestLink()
	// Occupy the link, then queue a prefetch for the expert we'll miss on.
	l.Prefetch(ref(0, 0), 10, 0)
	l.Prefetch(ref(0, 1), 1, 0)
	l.AdvanceTo(0.5) // (0,0) in flight until 1; (0,1) queued
	avail := l.OnDemand(ref(0, 1), 0.5)
	if math.Abs(avail-1.5) > 1e-9 {
		t.Fatalf("promoted on-demand availability %v, want 1.5", avail)
	}
	// No duplicate transfer: total completed transfers must be 2.
	done := l.AdvanceTo(10)
	if len(done) != 2 {
		t.Fatalf("expected 2 transfers total, got %d: %+v", len(done), done)
	}
}

func TestOnDemandWaitsForInflightSameExpert(t *testing.T) {
	l := newTestLink()
	l.Prefetch(ref(0, 0), 1, 0)
	l.AdvanceTo(0.5) // in flight until 1
	avail := l.OnDemand(ref(0, 0), 0.5)
	if math.Abs(avail-1) > 1e-9 {
		t.Fatalf("should wait for own in-flight transfer: %v, want 1", avail)
	}
}

func TestOnDemandPausesPrefetches(t *testing.T) {
	l := newTestLink()
	l.Prefetch(ref(0, 0), 1, 0)
	l.AdvanceTo(0.2)              // (0,0) in flight until 1
	l.Prefetch(ref(0, 1), 1, 0.2) // queued
	avail := l.OnDemand(ref(5, 5), 0.2)
	if math.Abs(avail-1.2) > 1e-9 {
		t.Fatalf("on-demand avail %v, want 1.2 (dedicated stream)", avail)
	}
	// The queued prefetch must not start before the on-demand finishes.
	done := l.AdvanceTo(10)
	for _, d := range done {
		if d.Ref == ref(0, 1) && d.Start < 1.2 {
			t.Fatalf("prefetch started during on-demand pause: %+v", d)
		}
	}
}

func TestConsecutiveOnDemandsSerialize(t *testing.T) {
	l := newTestLink()
	a := l.OnDemand(ref(0, 0), 0)
	b := l.OnDemand(ref(0, 1), 0)
	if a != 1 || b != 2 {
		t.Fatalf("serialization wrong: %v, %v", a, b)
	}
}

func TestClusterPlacementRoundRobin(t *testing.T) {
	cfg := moe.Tiny() // 4 layers x 6 experts
	c := NewCluster(testSpec(), 3, cfg)
	counts := make([]int, 3)
	for lyr := 0; lyr < cfg.Layers; lyr++ {
		for e := 0; e < cfg.RoutedExperts; e++ {
			counts[c.GPUFor(ref(lyr, e))]++
		}
	}
	for i, n := range counts {
		if n != cfg.NumExperts()/3 {
			t.Fatalf("GPU %d holds %d experts, want %d", i, n, cfg.NumExperts()/3)
		}
	}
}

func TestClusterParallelTransfers(t *testing.T) {
	cfg := moe.Tiny()
	dur := testSpec().TransferMS(cfg.ExpertBytes())
	c := NewCluster(testSpec(), 2, cfg)
	// Experts 0 and 1 of layer 0 land on different GPUs (IDs 0,1 mod 2).
	end := c.SyncLoad([]moe.ExpertRef{ref(0, 0), ref(0, 1)}, 0)
	if math.Abs(end-dur) > 1e-9 {
		t.Fatalf("parallel sync load took %v, want %v (parallel links)", end, dur)
	}
	// Same-GPU experts serialize: 0 and 2 are both on GPU 0.
	c2 := NewCluster(testSpec(), 2, cfg)
	end = c2.SyncLoad([]moe.ExpertRef{ref(0, 0), ref(0, 2)}, 0)
	if math.Abs(end-2*dur) > 1e-9 {
		t.Fatalf("same-link sync load took %v, want %v", end, 2*dur)
	}
}

func TestClusterStatsAndQueue(t *testing.T) {
	cfg := moe.Tiny()
	dur := testSpec().TransferMS(cfg.ExpertBytes())
	c := NewCluster(testSpec(), 2, cfg)
	c.Prefetch(ref(0, 0), 1, 0)
	c.Prefetch(ref(0, 1), 1, 0)
	if c.QueueLen() != 2 {
		t.Fatalf("queue len %d", c.QueueLen())
	}
	done := c.AdvanceTo(5)
	if len(done) != 2 {
		t.Fatalf("completions %d", len(done))
	}
	s := c.Stats()
	if s.Prefetches != 2 || math.Abs(s.BusyMS-2*dur) > 1e-9 {
		t.Fatalf("stats %+v", s)
	}
}

func TestNewClusterPanicsOnZeroGPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(testSpec(), 0, moe.Tiny())
}

func TestIdleGapThenPrefetch(t *testing.T) {
	l := newTestLink()
	l.Prefetch(ref(0, 0), 1, 0)
	l.AdvanceTo(5) // completes at 1, idle after
	l.Prefetch(ref(0, 1), 1, 6)
	done := l.AdvanceTo(10)
	if len(done) != 1 || done[0].Start != 6 || done[0].End != 7 {
		t.Fatalf("idle-gap scheduling wrong: %+v", done)
	}
}

func TestGPUSpecs(t *testing.T) {
	g3090, a100 := RTX3090(), A100()
	if g3090.MemBytes != 24<<30 || a100.MemBytes != 80<<30 {
		t.Fatal("GPU memory sizes wrong")
	}
	if a100.HBMGBps <= g3090.HBMGBps || a100.PerLayerOverheadMS >= g3090.PerLayerOverheadMS {
		t.Fatal("A100 must be strictly faster than 3090")
	}
}

func TestTransferLatencyIncluded(t *testing.T) {
	// Fixed per-copy latency must be charged on every transfer.
	spec := testSpec()
	spec.TransferLatencyMS = 0.5
	l := NewLink(spec, 10_000_000) // 1 ms wire time + 0.5 ms latency
	avail := l.OnDemand(ref(0, 0), 0)
	if math.Abs(avail-1.5) > 1e-9 {
		t.Fatalf("on-demand with fixed latency = %v, want 1.5", avail)
	}
	l.AdvanceTo(avail) // drain the on-demand completion record
	l.Prefetch(ref(0, 1), 1, 2)
	done := l.AdvanceTo(5)
	if len(done) != 1 || math.Abs(done[0].End-done[0].Start-1.5) > 1e-9 {
		t.Fatalf("prefetch duration wrong: %+v", done)
	}
}

func TestPaperGPUTransferLatencies(t *testing.T) {
	if RTX3090().TransferLatencyMS <= 0 || A100().TransferLatencyMS <= 0 {
		t.Fatal("paper GPUs must model per-copy latency")
	}
	if A100().TransferLatencyMS >= RTX3090().TransferLatencyMS {
		t.Fatal("A100 stack must have lower dispatch latency")
	}
}
